"""Tests for metric registries and the Prometheus/JSON exporters.

The contract under test: every registry renders to valid Prometheus
text exposition format (0.0.4) that round-trips through
:func:`repro.obs.export.parse_prometheus_text` without losing a single
sample, and the JSON dump mirrors the same data.
"""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.export import parse_prometheus_text, render_prometheus
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_trace,
    default_registry,
)
from repro.obs.trace import STAGE_DIAGNOSIS, Span


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        counter = Counter("hits_total", "hits", ("stage",))
        counter.inc(stage="a")
        counter.inc(2.5, stage="a")
        counter.inc(stage="b")
        assert counter.value(stage="a") == 3.5
        assert counter.value(stage="b") == 1.0
        assert counter.value(stage="never") == 0.0

    def test_rejects_negative_and_wrong_labels(self):
        counter = Counter("hits_total", "", ("stage",))
        with pytest.raises(ConfigurationError):
            counter.inc(-1, stage="a")
        with pytest.raises(ConfigurationError):
            counter.inc(1, wrong="a")
        with pytest.raises(ConfigurationError):
            counter.inc(1)


class TestGauge:
    def test_set_overwrites_and_inc_dec_accumulate(self):
        gauge = Gauge("fleet_tenants", "", ("shard",))
        gauge.set(5, shard="0")
        gauge.set(2, shard="0")
        assert gauge.value(shard="0") == 2.0
        gauge.inc(shard="0")
        gauge.dec(3, shard="0")
        assert gauge.value(shard="0") == 0.0
        assert gauge.value(shard="never") == 0.0

    def test_gauges_may_go_negative(self):
        gauge = Gauge("delta", "")
        gauge.dec(2.5)
        assert gauge.value() == -2.5

    def test_renders_as_gauge_type(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "queue depth", ("shard",)).set(7, shard="1")
        parsed = parse_prometheus_text(render_prometheus(registry))
        assert parsed.types["depth"] == "gauge"
        assert parsed.value("depth", shard="1") == 7

    def test_registry_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("x", "")
        with pytest.raises(ConfigurationError):
            registry.counter("x", "")


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        hist = Histogram("lat_seconds", "", (), buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            hist.observe(value)
        ((key, cumulative, total, count),) = list(hist.samples())
        assert key == ()
        assert cumulative == [1, 3, 4]  # le=0.1, le=1.0, +Inf
        assert total == pytest.approx(6.25)
        assert count == 4
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(6.25)

    def test_label_sets_are_independent(self):
        hist = Histogram("lat", "", ("stage",), buckets=(1.0,))
        hist.observe(0.5, stage="a")
        hist.observe(2.0, stage="b")
        assert hist.count(stage="a") == 1
        assert hist.sum(stage="b") == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("stage",))
        again = registry.counter("x_total", "ignored", ("stage",))
        assert first is again

    def test_kind_or_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("stage",))
        with pytest.raises(ConfigurationError):
            registry.histogram("x_total", "", ("stage",))
        with pytest.raises(ConfigurationError):
            registry.counter("x_total", "", ("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", label_names=("bad-label",))

    def test_reset_clears_metrics(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        registry.reset()
        assert registry.get("x_total") is None

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestPrometheusRoundTrip:
    def _populated(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "fchain_spans_total", "Spans per stage", ("stage",)
        )
        counter.inc(3, stage="smoothing")
        counter.inc(1.5, stage="cusum_bootstrap")
        hist = registry.histogram(
            "fchain_stage_seconds",
            "Wall seconds per stage",
            ("stage",),
            buckets=(0.001, 0.1, 1.0),
        )
        for value in (0.0004, 0.05, 0.07, 2.0):
            hist.observe(value, stage="smoothing")
        return registry

    def test_render_and_parse_preserve_every_sample(self):
        registry = self._populated()
        parsed = parse_prometheus_text(render_prometheus(registry))
        assert parsed.types["fchain_spans_total"] == "counter"
        assert parsed.types["fchain_stage_seconds"] == "histogram"
        assert parsed.helps["fchain_spans_total"] == "Spans per stage"
        assert parsed.value("fchain_spans_total", stage="smoothing") == 3
        assert (
            parsed.value("fchain_spans_total", stage="cusum_bootstrap") == 1.5
        )
        assert (
            parsed.value("fchain_stage_seconds_bucket", stage="smoothing", le="0.001")
            == 1
        )
        assert (
            parsed.value("fchain_stage_seconds_bucket", stage="smoothing", le="0.1")
            == 3
        )
        assert (
            parsed.value("fchain_stage_seconds_bucket", stage="smoothing", le="+Inf")
            == 4
        )
        assert parsed.value(
            "fchain_stage_seconds_sum", stage="smoothing"
        ) == pytest.approx(2.1204)
        assert parsed.value("fchain_stage_seconds_count", stage="smoothing") == 4

    def test_label_values_escape_and_unescape(self):
        registry = MetricsRegistry()
        awkward = 'quote " backslash \\ newline \n end'
        registry.counter("x_total", "", ("tag",)).inc(1, tag=awkward)
        parsed = parse_prometheus_text(render_prometheus(registry))
        assert parsed.value("x_total", tag=awkward) == 1

    def test_render_via_registry_method_matches_function(self):
        registry = self._populated()
        assert registry.render_prometheus() == render_prometheus(registry)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus_text("").samples == {}


class TestJsonDump:
    def test_json_dump_mirrors_samples_and_serializes(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "things", ("stage",)).inc(2, stage="a")
        hist = registry.histogram("y_seconds", "", (), buckets=(1.0,))
        hist.observe(0.5)
        payload = registry.to_json()
        assert payload["x_total"]["type"] == "counter"
        assert payload["x_total"]["samples"] == [
            {"labels": {"stage": "a"}, "value": 2.0}
        ]
        assert payload["y_seconds"]["buckets"] == [1.0]
        assert payload["y_seconds"]["samples"][0]["cumulative_counts"] == [1, 1]
        json.dumps(payload)  # must be JSON-serializable as-is


class TestAggregateTrace:
    def test_trace_folds_into_stage_metrics(self):
        registry = MetricsRegistry()
        with Span(STAGE_DIAGNOSIS, {"executor": "thread"}) as trace:
            with trace.child("smoothing") as child:
                child.count("points", 4)
            with trace.child("smoothing"):
                pass
        aggregate_trace(trace, registry)
        assert registry.get("fchain_spans_total").value(stage="smoothing") == 2
        assert (
            registry.get("fchain_spans_total").value(stage=STAGE_DIAGNOSIS) == 1
        )
        assert registry.get("fchain_points_total").value(stage="smoothing") == 4
        assert registry.get("fchain_diagnoses_total").value() == 1
        assert (
            registry.get("fchain_stage_seconds").count(stage="smoothing") == 2
        )

    def test_non_diagnosis_root_does_not_count_a_diagnosis(self):
        registry = MetricsRegistry()
        with Span("validation") as span:
            pass
        aggregate_trace(span, registry)
        assert registry.get("fchain_diagnoses_total") is None
