"""Tests for the span tracer (``repro.obs.trace``).

Covers the contracts the pipeline instrumentation relies on: spans nest
and time themselves, ``"timings"`` mode drops counters/tags while
keeping durations, the off mode collapses onto the shared
:data:`NULL_SPAN` singleton with no retained allocation, and span trees
survive pickling (the process-executor merge-back path).
"""

import gc
import pickle
import time
import tracemalloc

import pytest

from repro.common.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    PIPELINE_STAGES,
    STAGE_DIAGNOSIS,
    TELEMETRY_MODES,
    NullTracer,
    Span,
    Tracer,
    make_tracer,
)


class TestSpan:
    def test_nesting_builds_a_tree(self):
        with Span("root") as root:
            with root.child("a") as a:
                with a.child("leaf"):
                    pass
            with root.child("b"):
                pass
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]
        assert [s.name for s in root.walk()] == ["root", "a", "leaf", "b"]
        assert root.stage_names() == frozenset({"root", "a", "leaf", "b"})

    def test_context_manager_measures_wall_time(self):
        with Span("timed") as span:
            time.sleep(0.01)
        assert span.duration >= 0.01
        # Parent wall time covers the child's.
        with Span("outer") as outer:
            with outer.child("inner"):
                time.sleep(0.005)
        assert outer.duration >= outer.children[0].duration

    def test_counters_and_tags_accumulate(self):
        with Span("s", {"component": "c0"}) as span:
            span.count("hits")
            span.count("hits", 2)
            span.tag(metric="cpu")
        assert span.counters == {"hits": 3}
        assert span.tags == {"component": "c0", "metric": "cpu"}
        assert span.counter_total("hits") == 3

    def test_counter_total_sums_over_descendants(self):
        root = Span("root")
        root.child("a").count("n", 2)
        root.child("a").count("n", 3)
        assert root.counter_total("n") == 5
        assert len(root.find_all("a")) == 2

    def test_stage_seconds_totals_per_name(self):
        root = Span("root")
        a1, a2 = root.child("a"), root.child("a")
        a1.duration, a2.duration, root.duration = 0.25, 0.5, 1.0
        totals = root.stage_seconds()
        assert totals["a"] == pytest.approx(0.75)
        assert totals["root"] == pytest.approx(1.0)

    def test_timings_mode_drops_counters_and_tags(self):
        with Span("s", {"component": "c0"}, full=False) as span:
            span.count("hits", 7)
            span.tag(metric="cpu")
            child = span.child("inner", metric="mem")
            child.count("more", 1)
        assert span.tags == {}
        assert span.counters == {}
        assert child.tags == {}
        assert child.counters == {}

    def test_to_dict_round_trips_structure(self):
        with Span("root", {"executor": "thread"}) as root:
            root.count("n", 4)
            with root.child("leaf"):
                pass
        payload = root.to_dict()
        assert payload["name"] == "root"
        assert payload["tags"] == {"executor": "thread"}
        assert payload["counters"] == {"n": 4}
        assert [c["name"] for c in payload["children"]] == ["leaf"]
        assert payload["duration_ms"] == pytest.approx(root.duration * 1e3)

    def test_format_tree_lists_stages_and_filters_by_min_ms(self):
        root = Span("root", {"executor": "thread"})
        root.duration = 0.05
        fast, slow = root.child("fast"), root.child("slow")
        fast.duration, slow.duration = 0.0001, 0.02
        slow.count("n", 3)
        text = root.format_tree()
        assert "root[executor=thread]" in text
        assert "fast" in text and "slow" in text and "n=3" in text
        filtered = root.format_tree(min_ms=1.0)
        assert "slow" in filtered and "fast" not in filtered

    def test_span_tree_pickles(self):
        with Span("root", {"executor": "process"}) as root:
            root.count("n", 2)
            with root.child("leaf", metric="cpu"):
                pass
        clone = pickle.loads(pickle.dumps(root))
        assert clone.to_dict() == root.to_dict()
        # The clone is still usable as a timing context afterwards.
        with clone.child("post"):
            pass
        assert clone.children[-1].name == "post"


class TestNullSpan:
    def test_everything_returns_the_singleton(self):
        assert NULL_SPAN.child("anything", component="c0") is NULL_SPAN
        with NULL_SPAN as entered:
            assert entered is NULL_SPAN
        assert NULL_SPAN.count("n") is None
        assert NULL_SPAN.tag(a=1) is None
        assert NULL_SPAN.adopt(Span("x")) is None

    def test_off_mode_retains_no_allocation(self):
        def spin(n):
            for _ in range(n):
                with NULL_SPAN.child("stage", component="c") as span:
                    span.count("samples", 128)
                    span.tag(metric="cpu")

        spin(100)  # warm up any interpreter caches
        gc.collect()
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        spin(5_000)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        retained = sum(
            stat.size_diff for stat in after.compare_to(before, "filename")
        )
        # 5000 instrumented "calls" must not retain memory proportional
        # to the call count (a real span tree would be several MB).
        assert retained < 50_000


class TestTracers:
    def test_make_tracer_dispatch(self):
        assert make_tracer("off") is NULL_TRACER
        assert isinstance(make_tracer("timings"), Tracer)
        assert isinstance(make_tracer("full"), Tracer)
        with pytest.raises(ConfigurationError):
            make_tracer("verbose")
        with pytest.raises(ConfigurationError):
            Tracer("off")

    def test_null_tracer_hands_out_null_span(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.span(STAGE_DIAGNOSIS, executor="thread") is NULL_SPAN
        tracer.observe(Span("x"))  # no-op, no registry

    def test_full_tracer_spans_carry_tags(self):
        tracer = Tracer("full", registry=MetricsRegistry())
        span = tracer.span(STAGE_DIAGNOSIS, executor="thread")
        assert span.tags == {"executor": "thread"}

    def test_timings_tracer_spans_drop_tags(self):
        tracer = Tracer("timings", registry=MetricsRegistry())
        span = tracer.span(STAGE_DIAGNOSIS, executor="thread")
        assert span.tags == {}

    def test_observe_aggregates_into_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer("full", registry=registry)
        with tracer.span(STAGE_DIAGNOSIS) as trace:
            with trace.child("stage_x") as child:
                child.count("things", 3)
        tracer.observe(trace)
        assert registry.get("fchain_spans_total").value(stage="stage_x") == 1
        assert registry.get("fchain_things_total").value(stage="stage_x") == 3
        assert registry.get("fchain_diagnoses_total").value() == 1


class TestStageVocabulary:
    def test_pipeline_stage_names_are_stable(self):
        # Exporters and dashboards key on these exact strings; renaming
        # any of them is a breaking change and must fail loudly here.
        assert PIPELINE_STAGES == (
            "diagnosis",
            "store_sync",
            "component",
            "metric",
            "smoothing",
            "cusum_bootstrap",
            "outlier_filter",
            "burst_thresholds",
            "onset_rollback",
            "pinpoint",
        )
        assert TELEMETRY_MODES == ("off", "timings", "full")
