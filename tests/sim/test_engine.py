"""Tests for the simulation engine."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import SimulationEngine


class Counter:
    def __init__(self):
        self.ticks = []

    def tick(self, t):
        self.ticks.append(t)


class TestEngine:
    def test_step_advances_time(self):
        engine = SimulationEngine()
        counter = Counter()
        engine.add(counter)
        assert engine.step() == 0
        assert engine.time == 1
        assert counter.ticks == [0]

    def test_run(self):
        engine = SimulationEngine()
        counter = Counter()
        engine.add(counter)
        engine.run(5)
        assert counter.ticks == [0, 1, 2, 3, 4]

    def test_run_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().run(-1)

    def test_registration_order_is_execution_order(self):
        order = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def tick(self, t):
                order.append(self.tag)

        engine = SimulationEngine()
        engine.add(Tagged("a"))
        engine.add(Tagged("b"))
        engine.step()
        assert order == ["a", "b"]

    def test_rejects_non_tickable(self):
        with pytest.raises(SimulationError):
            SimulationEngine().add(object())

    def test_run_until_predicate(self):
        engine = SimulationEngine()
        engine.add(Counter())
        hit = engine.run_until(lambda t: t == 3, max_seconds=10)
        assert hit == 3
        assert engine.time == 4

    def test_run_until_timeout(self):
        engine = SimulationEngine()
        engine.add(Counter())
        assert engine.run_until(lambda t: False, max_seconds=5) == -1

    def test_fork_is_independent(self):
        engine = SimulationEngine()
        counter = Counter()
        engine.add(counter)
        engine.run(2)
        fork = engine.fork()
        fork.run(3)
        assert engine.time == 2
        assert fork.time == 5
        assert counter.ticks == [0, 1]

    def test_start_offset(self):
        engine = SimulationEngine(start=10)
        counter = Counter()
        engine.add(counter)
        engine.step()
        assert counter.ticks == [10]
