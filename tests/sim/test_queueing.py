"""Tests for queueing math helpers."""

import math

import pytest

from repro.sim.queueing import mm1_sojourn, queue_sojourn, utilization


class TestUtilization:
    def test_basic(self):
        assert utilization(50, 100) == pytest.approx(0.5)

    def test_zero_service_with_arrivals(self):
        assert utilization(1, 0) == math.inf

    def test_zero_both(self):
        assert utilization(0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            utilization(-1, 5)


class TestMM1:
    def test_light_load(self):
        assert mm1_sojourn(0, 10) == pytest.approx(0.1)

    def test_saturated_is_inf(self):
        assert mm1_sojourn(10, 10) == math.inf
        assert mm1_sojourn(11, 10) == math.inf

    def test_monotone_in_load(self):
        assert mm1_sojourn(5, 10) > mm1_sojourn(1, 10)


class TestQueueSojourn:
    def test_empty_queue(self):
        assert queue_sojourn(0, 100, 0.01) == pytest.approx(0.01)

    def test_backlog_adds_wait(self):
        assert queue_sojourn(50, 100, 0.01) == pytest.approx(0.51)

    def test_stopped_server(self):
        assert queue_sojourn(5, 0, 0.01) == math.inf

    def test_negative_backlog_rejected(self):
        with pytest.raises(ValueError):
            queue_sojourn(-1, 10, 0.01)
