"""Tests for the fluid queueing component."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.component import ComponentSpec, QueueComponent


def make(name="c", capacity=100.0, buffer_limit=50.0, **kwargs):
    return QueueComponent(
        ComponentSpec(name, capacity=capacity, buffer_limit=buffer_limit, **kwargs)
    )


class TestSpec:
    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            ComponentSpec("x", capacity=0)

    def test_rejects_zero_buffer(self):
        with pytest.raises(SimulationError):
            ComponentSpec("x", capacity=1, buffer_limit=0)


class TestEnqueue:
    def test_accepts_within_buffer(self):
        comp = make()
        accepted = comp.enqueue(30)
        assert accepted == 30
        assert comp.queue == 30
        assert comp.arrived == 30

    def test_drops_overflow_beyond_backlog_headroom(self):
        comp = make(buffer_limit=10)
        comp.backlog = 10.0  # fully congested
        accepted = comp.enqueue(5)
        assert accepted == 0
        assert comp.dropped == 5

    def test_overflow_raises_when_requested(self):
        comp = make(buffer_limit=10)
        comp.backlog = 10.0
        with pytest.raises(SimulationError):
            comp.enqueue(5, drop_overflow=False)


class TestProcess:
    def test_processes_up_to_rate(self):
        comp = make(capacity=40, buffer_limit=500)
        comp.enqueue(100)
        processed = comp.process()
        assert processed == pytest.approx(40)
        assert comp.queue == pytest.approx(60)
        assert comp.backlog == pytest.approx(60)

    def test_cpu_share_scales_rate(self):
        comp = make(capacity=40, buffer_limit=500)
        comp.enqueue(100)
        assert comp.process(cpu_share=0.5) == pytest.approx(20)

    def test_memory_penalty_scales_rate(self):
        comp = make(capacity=40)
        comp.enqueue(100)
        assert comp.process(memory_penalty=0.25) == pytest.approx(10)

    def test_disk_share_only_for_disk_bound(self):
        normal = make(capacity=40)
        normal.enqueue(100)
        assert normal.process(disk_share=0.1) == pytest.approx(40)
        bound = make(capacity=40, disk_bound=True)
        bound.enqueue(100)
        assert bound.process(disk_share=0.1) == pytest.approx(4)

    def test_speed_multiplier(self):
        comp = make(capacity=40)
        comp.speed_multiplier = 0.1
        comp.enqueue(100)
        assert comp.process() == pytest.approx(4)

    def test_emission_routing(self):
        up = make("up", capacity=100)
        down_a = make("a")
        down_b = make("b")
        up.connect(down_a, weight=3.0)
        up.connect(down_b, weight=1.0)
        up.enqueue(40)
        up.process()
        assert down_a.queue == pytest.approx(30)
        assert down_b.queue == pytest.approx(10)

    def test_output_amplification(self):
        up = make("up", capacity=100, output_amplification=2.0)
        down = make("down", buffer_limit=500)
        up.connect(down)
        up.enqueue(40)
        up.process()
        assert down.queue == pytest.approx(80)


class TestBackPressure:
    def test_blocked_by_full_downstream(self):
        up = make("up", capacity=100)
        down = make("down", buffer_limit=10)
        down.backlog = 10.0  # congested: no headroom
        up.connect(down)
        up.enqueue(50)
        processed = up.process()
        assert processed == pytest.approx(0)
        assert up.blocked

    def test_partial_block(self):
        up = make("up", capacity=100)
        down = make("down", buffer_limit=10)
        down.backlog = 4.0
        up.connect(down)
        up.enqueue(50)
        assert up.process() == pytest.approx(6)
        assert up.blocked

    def test_unblocked_when_downstream_has_room(self):
        up = make("up", capacity=10)
        down = make("down", buffer_limit=100)
        up.connect(down)
        up.enqueue(5)
        up.process()
        assert not up.blocked


class TestRouting:
    def test_weight_overrides(self):
        up = make("up")
        a, b = make("a"), make("b")
        up.connect(a)
        up.connect(b)
        up.weight_overrides["a"] = 1.0
        up.weight_overrides["b"] = 0.0
        routing = dict((c.name, f) for c, f in up.routing())
        assert routing["a"] == pytest.approx(1.0)
        assert routing["b"] == pytest.approx(0.0)

    def test_rejects_nonpositive_weight(self):
        up, down = make("up"), make("down")
        with pytest.raises(SimulationError):
            up.connect(down, weight=0)


class TestDerived:
    def test_memory_tracks_queue_and_leak(self):
        comp = make(base_memory_mb=100, memory_per_item_mb=2.0)
        comp.enqueue(10)
        comp.leaked_mb = 50
        assert comp.memory_mb() == pytest.approx(100 + 20 + 50)

    def test_sojourn_uses_backlog(self):
        comp = make(capacity=10, service_time=0.1, buffer_limit=500)
        comp.enqueue(30)
        comp.process()  # backlog 20
        assert comp.sojourn_time() == pytest.approx(20 / 10 + 0.1)

    def test_sojourn_inf_when_stopped(self):
        comp = make()
        comp.effective_rate = 0.0
        assert comp.sojourn_time() == float("inf")

    def test_begin_tick_resets_observations(self):
        comp = make()
        comp.enqueue(5)
        comp.process()
        comp.begin_tick()
        assert comp.arrived == 0
        assert comp.processed == 0
        assert not comp.blocked
