"""Tests for metric synthesis."""

import numpy as np
import pytest

from repro.cloud.host import Host
from repro.cloud.vm import VirtualMachine
from repro.common.types import Metric
from repro.sim.component import ComponentSpec, QueueComponent
from repro.sim.metrics import DEFAULT_PROFILES, MetricSynthesizer, NoiseProfile


@pytest.fixture
def setup():
    host = Host("h", cores=2.0)
    vm = VirtualMachine("c", memory_limit_mb=2048)
    host.attach(vm)
    comp = QueueComponent(
        ComponentSpec(
            "c",
            capacity=100.0,
            kb_in_per_item=2.0,
            kb_out_per_item=3.0,
            disk_read_kb_per_item=5.0,
            base_memory_mb=400.0,
        )
    )
    return comp, vm, host


def run_tick(comp, vm, host, items=50.0):
    comp.begin_tick()
    comp.enqueue(items)
    demand = comp.desired_cpu_demand() * vm.vcpus_baseline
    host.allocate_cpu({"c": demand})
    comp.process(cpu_share=vm.component_cpu_share())
    return comp


class TestSynthesis:
    def test_all_six_metrics_present(self, setup):
        comp, vm, host = setup
        run_tick(comp, vm, host)
        values = MetricSynthesizer("c").sample(0, comp, vm, host)
        assert set(values) == set(Metric)

    def test_cpu_tracks_processing(self, setup):
        comp, vm, host = setup
        run_tick(comp, vm, host, items=50)
        samples = [
            MetricSynthesizer("c", seed=i).sample(0, comp, vm, host)[
                Metric.CPU_USAGE
            ]
            for i in range(20)
        ]
        assert 35 < np.mean(samples) < 75  # ~50% of capacity plus texture

    def test_network_tracks_arrivals(self, setup):
        comp, vm, host = setup
        run_tick(comp, vm, host, items=50)
        samples = [
            MetricSynthesizer("c", seed=i).sample(0, comp, vm, host)[
                Metric.NETWORK_IN
            ]
            for i in range(20)
        ]
        assert 70 < np.mean(samples) < 140  # 50 items * 2 KB

    def test_memory_includes_leak(self, setup):
        comp, vm, host = setup
        comp.leaked_mb = 500.0
        value = MetricSynthesizer("c", gc_period=0).sample(0, comp, vm, host)[
            Metric.MEMORY_USAGE
        ]
        assert value > 850

    def test_memory_capped_at_limit(self, setup):
        comp, vm, host = setup
        comp.leaked_mb = 99999.0
        value = MetricSynthesizer("c").sample(0, comp, vm, host)[
            Metric.MEMORY_USAGE
        ]
        assert value <= vm.memory_limit_mb

    def test_cpu_capped_at_100(self, setup):
        comp, vm, host = setup
        vm.extra_cpu_cores = 50.0
        run_tick(comp, vm, host)
        value = MetricSynthesizer("c").sample(0, comp, vm, host)[
            Metric.CPU_USAGE
        ]
        assert value <= 100.0

    def test_speed_multiplier_raises_cpu_demand(self, setup):
        comp, vm, host = setup
        comp.speed_multiplier = 0.5
        run_tick(comp, vm, host, items=40)
        samples = [
            MetricSynthesizer("c", seed=i).sample(0, comp, vm, host)[
                Metric.CPU_USAGE
            ]
            for i in range(10)
        ]
        # 40 processed at an effective capacity of 50 -> ~80 %.
        assert np.mean(samples) > 60

    def test_deterministic_given_seed(self, setup):
        comp, vm, host = setup
        run_tick(comp, vm, host)
        a = MetricSynthesizer("c", seed=4).sample(0, comp, vm, host)
        b = MetricSynthesizer("c", seed=4).sample(0, comp, vm, host)
        assert a == b

    def test_nonnegative_values(self, setup):
        comp, vm, host = setup
        synth = MetricSynthesizer("c")
        for t in range(100):
            run_tick(comp, vm, host, items=1.0)
            for value in synth.sample(t, comp, vm, host).values():
                assert value >= 0.0


class TestTexture:
    def test_spikes_occur(self, setup):
        comp, vm, host = setup
        synth = MetricSynthesizer("c", seed=1)
        values = []
        for t in range(400):
            run_tick(comp, vm, host, items=50)
            values.append(
                synth.sample(t, comp, vm, host)[Metric.NETWORK_IN]
            )
        values = np.asarray(values)
        assert values.max() > 1.3 * np.median(values)

    def test_gc_sawtooth_repeats(self):
        synth = MetricSynthesizer("c", gc_period=100)
        assert synth._gc_sawtooth(5) == pytest.approx(synth._gc_sawtooth(105))

    def test_profiles_overridable(self, setup):
        comp, vm, host = setup
        quiet = {m: NoiseProfile(0.0, 0.0, 1.0, 0.0) for m in DEFAULT_PROFILES}
        synth = MetricSynthesizer("c", profiles=quiet, gc_period=0)
        run_tick(comp, vm, host, items=50)
        a = synth.sample(0, comp, vm, host)[Metric.NETWORK_IN]
        assert a == pytest.approx(100.0)  # exactly 50 items * 2 KB
