"""Tests for fault campaign scheduling."""

import pytest

from repro.common.rng import spawn_rng
from repro.faults.injector import FaultCampaign, schedule_fault_time
from repro.faults.library import CpuHogFault, MemLeakFault


class TestScheduleFaultTime:
    def test_within_window(self):
        rng = spawn_rng("t")
        for _ in range(50):
            t = schedule_fault_time(rng, (100, 200))
            assert 100 <= t < 200

    def test_invalid_window(self):
        rng = spawn_rng("t")
        with pytest.raises(ValueError):
            schedule_fault_time(rng, (200, 100))
        with pytest.raises(ValueError):
            schedule_fault_time(rng, (-5, 10))


class TestCampaign:
    def test_materialize_deterministic(self):
        campaign = FaultCampaign(
            "c", lambda t, rng: [CpuHogFault(t, "db")], (100, 300)
        )
        a = campaign.materialize("run-1")
        b = campaign.materialize("run-1")
        assert a[1] == b[1]

    def test_different_runs_differ(self):
        campaign = FaultCampaign(
            "c", lambda t, rng: [CpuHogFault(t, "db")], (100, 1000)
        )
        times = {campaign.materialize(i)[1] for i in range(20)}
        assert len(times) > 5

    def test_ground_truth_union(self):
        campaign = FaultCampaign(
            "c",
            lambda t, rng: [MemLeakFault(t, "a"), MemLeakFault(t, "b")],
            (0, 10),
        )
        _, _, truth = campaign.materialize(0)
        assert truth == frozenset({"a", "b"})

    def test_rng_passed_to_factory(self):
        seen = []

        def factory(t, rng):
            seen.append(float(rng.random()))
            return [MemLeakFault(t, "x")]

        campaign = FaultCampaign("c", factory, (0, 10))
        campaign.materialize(1)
        campaign.materialize(2)
        assert seen[0] != seen[1]
