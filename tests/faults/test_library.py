"""Tests for the fault library."""

import pytest

from repro.apps.rubis import APP1, APP2, DB, WEB, RubisApplication
from repro.faults.base import Fault
from repro.faults.library import (
    BottleneckFault,
    CpuHogFault,
    DiskHogFault,
    InfiniteLoopFault,
    LBBugFault,
    MemLeakFault,
    NetHogFault,
    OffloadBugFault,
    WorkloadSurge,
)


def fresh_app(seed=1):
    return RubisApplication(seed=seed, duration=400)


class TestBase:
    def test_dormant_before_start(self):
        app = fresh_app()
        fault = CpuHogFault(100, DB)
        fault.on_tick(app, 50)
        assert not fault.active
        assert app.vms[DB].extra_cpu_cores == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            MemLeakFault(-1, DB)

    def test_repr(self):
        assert "db" in repr(MemLeakFault(5, DB))


class TestMemLeak:
    def test_memory_grows(self):
        app = fresh_app()
        fault = MemLeakFault(0, DB, rate_mb_per_s=10.0)
        for t in range(5):
            fault.on_tick(app, t)
        assert app.components[DB].leaked_mb == pytest.approx(50.0)

    def test_ground_truth(self):
        assert MemLeakFault(0, DB).ground_truth == frozenset({DB})


class TestCpuHog:
    def test_ramp(self):
        app = fresh_app()
        fault = CpuHogFault(0, DB, cores=10.0, ramp_seconds=10)
        for t in range(6):
            fault.on_tick(app, t)
        assert app.vms[DB].extra_cpu_cores == pytest.approx(5.0)
        for t in range(6, 20):
            fault.on_tick(app, t)
        assert app.vms[DB].extra_cpu_cores == pytest.approx(10.0)


class TestNetHog:
    def test_adds_cpu_and_traffic(self):
        app = fresh_app()
        fault = NetHogFault(0, WEB, cores=4.0, net_kbps=1000.0, ramp_seconds=1)
        fault.on_tick(app, 0)
        fault.on_tick(app, 1)
        assert app.vms[WEB].extra_cpu_cores == pytest.approx(4.0)
        assert app.vms[WEB].extra_net_in_kbps == pytest.approx(1000.0)


class TestBottleneck:
    def test_caps_vm(self):
        app = fresh_app()
        BottleneckFault(0, DB, cap=0.1).on_tick(app, 0)
        assert app.vms[DB].cpu_cap == pytest.approx(0.1)


class TestDiskHog:
    def test_dom0_ramp_bounded(self):
        app = fresh_app()
        fault = DiskHogFault(0, [DB], ramp_kbps_per_s=1e9)
        fault.on_tick(app, 0)
        fault.on_tick(app, 500)
        host = app.vms[DB].host
        assert host.dom0_disk_kbps <= host.disk_bw_kbps

    def test_multi_target_ground_truth(self):
        fault = DiskHogFault(0, ["a", "b"])
        assert fault.ground_truth == frozenset({"a", "b"})


class TestInfiniteLoop:
    def test_slows_and_burns(self):
        app = fresh_app()
        InfiniteLoopFault(0, APP1, residual_speed=0.1, loop_cores=1.0).on_tick(
            app, 0
        )
        assert app.components[APP1].speed_multiplier == pytest.approx(0.1)
        assert app.vms[APP1].extra_cpu_cores == pytest.approx(1.0)


class TestApplicationBugs:
    def test_offload_bug_skews_and_slows(self):
        app = fresh_app()
        OffloadBugFault(0).on_tick(app, 0)
        web = app.components[WEB]
        routing = dict((c.name, f) for c, f in web.routing())
        assert routing[APP1] > 0.85
        assert app.components[APP1].speed_multiplier < 1.0

    def test_offload_ground_truth_both_servers(self):
        assert OffloadBugFault(0).ground_truth == frozenset({APP1, APP2})

    def test_lb_bug_starves_app2(self):
        app = fresh_app()
        LBBugFault(0).on_tick(app, 0)
        routing = dict(
            (c.name, f) for c, f in app.components[WEB].routing()
        )
        assert routing[APP2] < 0.01

    def test_workload_surge_scales_rates(self):
        app = fresh_app()
        before = app.workload.rate(100)
        WorkloadSurge(0, factor=2.0).on_tick(app, 0)
        assert app.workload.rate(100) == pytest.approx(2 * before)

    def test_workload_surge_empty_truth(self):
        assert WorkloadSurge(0).ground_truth == frozenset()
