"""Golden end-to-end accuracy under degraded telemetry.

The paper's headline scenarios (RUBiS CpuHog at the database, System S
MemLeak at PE3) must keep localizing correctly when up to ~10 % of the
samples never arrive, and must degrade to an explicit *inconclusive*
verdict — never a wrong component presented as the sole finding — when
half the telemetry is gone. These are the resilience layer's golden
numbers; if a refactor moves them, the degradation behaviour changed.
"""

import pytest

from repro.apps.rubis import DB
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.eval.chaos import ChaosSpec, corrupt_store

CONFIG = FChainConfig(cusum_bootstraps=40)
SEEDS = (11, 23, 47)


def _diagnose(app, violation, spec, graph=None):
    store = corrupt_store(app.store, spec)
    with FChain(CONFIG, dependency_graph=graph) as fchain:
        return fchain.localize(store, violation_time=violation)


class TestTenPercentLoss:
    """≤10 % missing samples: the verdict must survive."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rubis_cpuhog_still_localizes_db(
        self, rubis_cpuhog_run, rubis_dependency_graph, seed
    ):
        app, violation = rubis_cpuhog_run
        diagnosis = _diagnose(
            app, violation, ChaosSpec(seed=seed, gap_fraction=0.10),
            graph=rubis_dependency_graph,
        )
        assert diagnosis.faulty == frozenset({DB})
        assert diagnosis.confidence in ("full", "degraded")
        quality = diagnosis.quality[DB]
        assert quality.coverage >= 0.8
        assert quality.metrics_analyzed > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_systems_memleak_still_localizes_pe3(
        self, systems_memleak_run, seed
    ):
        app, violation = systems_memleak_run
        diagnosis = _diagnose(
            app, violation, ChaosSpec(seed=seed, gap_fraction=0.10)
        )
        assert diagnosis.faulty == frozenset({"PE3"})
        assert diagnosis.confidence in ("full", "degraded")


class TestFiftyPercentLoss:
    """50 % missing samples: degrade, do not guess."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_rubis_degrades_to_inconclusive(self, rubis_cpuhog_run, seed):
        app, violation = rubis_cpuhog_run
        diagnosis = _diagnose(
            app, violation, ChaosSpec(seed=seed, gap_fraction=0.50)
        )
        # Never a wrong component as the sole verdict: either the true
        # culprit is named, or the verdict is explicitly inconclusive
        # with the unexaminable components surfaced.
        if diagnosis.faulty:
            assert DB in diagnosis.faulty
        else:
            assert diagnosis.is_inconclusive
            assert DB in diagnosis.skipped
            assert "coverage" in diagnosis.skipped_reasons[DB]
            assert "inconclusive" in diagnosis.summary()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_systems_degrades_to_inconclusive(self, systems_memleak_run, seed):
        app, violation = systems_memleak_run
        diagnosis = _diagnose(
            app, violation, ChaosSpec(seed=seed, gap_fraction=0.50)
        )
        if diagnosis.faulty:
            assert "PE3" in diagnosis.faulty
        else:
            assert diagnosis.is_inconclusive
            assert diagnosis.skipped
