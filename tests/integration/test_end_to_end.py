"""End-to-end integration tests: simulate, violate, localize, validate.

These cover the full pipeline on each benchmark application, including
the headline behaviours the paper reports:

* FChain pinpoints the true culprit behind back-pressure (RUBiS);
* FChain localizes without dependency information (System S);
* concurrent faults land within the concurrency threshold (Hadoop);
* a workload surge is attributed to an external factor;
* online validation removes false alarms without dropping true positives.
"""


from repro.apps.hadoop import MAPS, HadoopApplication
from repro.apps.rubis import APP1, APP2, DB, WEB, RubisApplication
from repro.core import FChain, FChainConfig
from repro.faults.library import (
    InfiniteLoopFault,
    LBBugFault,
    MemLeakFault,
    WorkloadSurge,
)


class TestRubis:
    def test_cpuhog_back_pressure_localized(
        self, rubis_cpuhog_run, rubis_dependency_graph
    ):
        app, violation = rubis_cpuhog_run
        fchain = FChain(dependency_graph=rubis_dependency_graph, seed=101)
        result = fchain.localize(app.store, violation_time=violation)
        assert result.faulty == frozenset({DB})
        assert result.chain.components[0] == DB

    def test_lbbug_concurrent_app_servers(self, rubis_dependency_graph):
        app = RubisApplication(seed=70, duration=2400)
        app.inject(LBBugFault(1300))
        app.run(2000)
        violation = app.slo.first_violation_after(1300)
        assert violation is not None
        fchain = FChain(dependency_graph=rubis_dependency_graph, seed=70)
        result = fchain.localize(app.store, violation_time=violation)
        assert result.faulty == frozenset({APP1, APP2})

    def test_workload_surge_external_factor(self, rubis_dependency_graph):
        # External-factor detection is best-effort under measurement noise
        # (a pre-surge noise change on one component breaks the onset
        # cluster); this seed has a clean collective shift.
        app = RubisApplication(seed=78, duration=2000)
        app.inject(WorkloadSurge(1200, factor=3.0))
        app.run(1400)
        violation = app.slo.first_violation_after(1200)
        assert violation is not None
        fchain = FChain(dependency_graph=rubis_dependency_graph, seed=78)
        result = fchain.localize(app.store, violation_time=violation)
        assert result.external_factor
        assert result.faulty == frozenset()


class TestSystemS:
    def test_memleak_without_dependencies(self, systems_memleak_run):
        """Dependency discovery fails on streams; FChain still works."""
        app, violation = systems_memleak_run
        fchain = FChain(dependency_graph=None, seed=202)
        result = fchain.localize(app.store, violation_time=violation)
        assert result.faulty == frozenset({"PE3"})

    def test_discovery_fails_on_streams(self, systems_discovery):
        assert not systems_discovery.discovered


class TestHadoop:
    def test_concurrent_infinite_loops(self):
        app = HadoopApplication(seed=72)
        for m in MAPS:
            app.inject(InfiniteLoopFault(900, m))
        app.run(1200)
        violation = app.slo.first_violation_after(900)
        assert violation is not None
        from repro.eval.runner import dependency_graph_for

        fchain = FChain(
            dependency_graph=dependency_graph_for("hadoop"), seed=72
        )
        result = fchain.localize(app.store, violation_time=violation)
        assert result.faulty == frozenset(MAPS)


class TestValidation:
    def test_validation_removes_false_alarm(self, rubis_cpuhog_run):
        """Force a false alarm into the result; validation clears it."""
        from repro.core.pinpoint import PinpointResult
        from repro.core.validation import apply_validation, validate_pinpointing
        from repro.core.propagation import ComponentReport, PropagationChain

        app, violation = rubis_cpuhog_run
        polluted = PinpointResult(
            faulty=frozenset({DB, WEB}),
            external_factor=False,
            chain=PropagationChain(links=((DB, violation - 10),)),
            reports={DB: ComponentReport(DB), WEB: ComponentReport(WEB)},
        )
        outcomes = validate_pinpointing(
            app, polluted, FChainConfig(validation_horizon=30)
        )
        validated = apply_validation(polluted, outcomes)
        assert validated.faulty == frozenset({DB})


class TestDeterminism:
    def test_full_pipeline_reproducible(self, rubis_dependency_graph):
        def run_once():
            app = RubisApplication(seed=73, duration=1800)
            app.inject(MemLeakFault(1200, DB))
            app.run(1600)
            violation = app.slo.first_violation_after(1200)
            fchain = FChain(dependency_graph=rubis_dependency_graph, seed=73)
            return violation, fchain.localize(app.store, violation_time=violation).faulty

        assert run_once() == run_once()
