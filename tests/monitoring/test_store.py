"""Tests for the metric store's core read/write surface.

Writes go through the unified ``ingest(IngestBatch(...))`` entry point;
the deprecated ``record``/``advance`` wrappers and the ring-specific
semantics (retention, wraparound, spill) are covered in
``test_ring.py``.
"""

import numpy as np
import pytest

from repro.common.types import Metric, MetricSample
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore


def _tick(store, t, values_by_component):
    store.ingest(
        IngestBatch(
            samples=[
                MetricSample(component, metric, t, value)
                for component, metrics in values_by_component.items()
                for metric, value in metrics.items()
            ],
            watermark=t + 1,
        )
    )


def test_ingest_and_read():
    store = MetricStore()
    for t in range(3):
        _tick(store, t, {"web": {Metric.CPU_USAGE: float(t)}})
    series = store.series("web", Metric.CPU_USAGE)
    assert list(series.values) == [0.0, 1.0, 2.0]
    assert series.start == 0


def test_length_counts_completed_ticks_only():
    store = MetricStore()
    store.ingest(
        IngestBatch(samples=[MetricSample("web", Metric.CPU_USAGE, 0, 1.0)])
    )
    assert store.length == 0
    store.advance_to(1)
    assert store.length == 1
    assert store.end == 1


def test_unknown_series_raises():
    store = MetricStore()
    with pytest.raises(KeyError):
        store.series("nope", Metric.CPU_USAGE)


def test_components_sorted():
    store = MetricStore()
    _tick(
        store,
        0,
        {"b": {Metric.CPU_USAGE: 1.0}, "a": {Metric.CPU_USAGE: 1.0}},
    )
    assert store.components == ["a", "b"]


def test_metrics_for_canonical_order():
    store = MetricStore()
    _tick(
        store,
        0,
        {"c": {Metric.DISK_WRITE: 1.0, Metric.CPU_USAGE: 2.0}},
    )
    assert store.metrics_for("c") == [Metric.CPU_USAGE, Metric.DISK_WRITE]


def test_window():
    store = MetricStore()
    store.ingest(
        IngestBatch(
            runs=[IngestRun("c", Metric.CPU_USAGE, 0, np.arange(10.0))],
            watermark=10,
        )
    )
    window = store.window("c", Metric.CPU_USAGE, 4, 7)
    assert list(window.values) == [4.0, 5.0, 6.0]


def test_from_arrays():
    store = MetricStore.from_arrays(
        {"c": {Metric.CPU_USAGE: [1, 2, 3], Metric.MEMORY_USAGE: [4, 5, 6]}},
        start=100,
    )
    assert store.length == 3
    assert store.series("c", Metric.MEMORY_USAGE).start == 100


def test_from_arrays_rejects_ragged():
    with pytest.raises(ValueError):
        MetricStore.from_arrays(
            {"c": {Metric.CPU_USAGE: [1], Metric.MEMORY_USAGE: [1, 2]}}
        )


def test_custom_start():
    store = MetricStore(start=50)
    _tick(store, 50, {"c": {Metric.CPU_USAGE: 1.0}})
    assert store.series("c", Metric.CPU_USAGE).start == 50
    assert store.end == 51


def test_run_ingest_matches_per_sample():
    values = np.linspace(5.0, 25.0, 20)
    per_sample = MetricStore()
    for t, value in enumerate(values):
        _tick(per_sample, t, {"c": {Metric.CPU_USAGE: float(value)}})
    batched = MetricStore()
    batched.ingest(
        IngestBatch(
            runs=[IngestRun("c", Metric.CPU_USAGE, 0, values)],
            watermark=len(values),
        )
    )
    np.testing.assert_array_equal(
        per_sample.series("c", Metric.CPU_USAGE).values,
        batched.series("c", Metric.CPU_USAGE).values,
    )
