"""Tests for the metric store."""

import pytest

from repro.common.types import Metric
from repro.monitoring.store import MetricStore


def test_record_and_read():
    store = MetricStore()
    for t in range(3):
        store.record("web", {Metric.CPU_USAGE: float(t)})
        store.advance()
    series = store.series("web", Metric.CPU_USAGE)
    assert list(series.values) == [0.0, 1.0, 2.0]
    assert series.start == 0


def test_length_counts_completed_ticks_only():
    store = MetricStore()
    store.record("web", {Metric.CPU_USAGE: 1.0})
    assert store.length == 0
    store.advance()
    assert store.length == 1
    assert store.end == 1


def test_unknown_series_raises():
    store = MetricStore()
    with pytest.raises(KeyError):
        store.series("nope", Metric.CPU_USAGE)


def test_components_sorted():
    store = MetricStore()
    store.record("b", {Metric.CPU_USAGE: 1.0})
    store.record("a", {Metric.CPU_USAGE: 1.0})
    store.advance()
    assert store.components == ["a", "b"]


def test_metrics_for_canonical_order():
    store = MetricStore()
    store.record("c", {Metric.DISK_WRITE: 1.0, Metric.CPU_USAGE: 2.0})
    store.advance()
    assert store.metrics_for("c") == [Metric.CPU_USAGE, Metric.DISK_WRITE]


def test_window():
    store = MetricStore()
    for t in range(10):
        store.record("c", {Metric.CPU_USAGE: float(t)})
        store.advance()
    window = store.window("c", Metric.CPU_USAGE, 4, 7)
    assert list(window.values) == [4.0, 5.0, 6.0]


def test_from_arrays():
    store = MetricStore.from_arrays(
        {"c": {Metric.CPU_USAGE: [1, 2, 3], Metric.MEMORY_USAGE: [4, 5, 6]}},
        start=100,
    )
    assert store.length == 3
    assert store.series("c", Metric.MEMORY_USAGE).start == 100


def test_from_arrays_rejects_ragged():
    with pytest.raises(ValueError):
        MetricStore.from_arrays(
            {"c": {Metric.CPU_USAGE: [1], Metric.MEMORY_USAGE: [1, 2]}}
        )


def test_custom_start():
    store = MetricStore(start=50)
    store.record("c", {Metric.CPU_USAGE: 1.0})
    store.advance()
    assert store.series("c", Metric.CPU_USAGE).start == 50
    assert store.end == 51
