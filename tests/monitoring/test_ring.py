"""Ring-buffer semantics of the rewritten MetricStore.

Covers the behavior the dict-backed store never had to define: bounded
retention with overwrite, reads across the physical wrap seam, backfill
into evicted history, misaligned ticks, the strict ingest preset,
segment spill, and shared-memory export of a wrapped store.
"""

import numpy as np
import pytest

from repro.common.errors import DataQualityError
from repro.common.types import Metric, MetricSample
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.shared import SharedStoreExport, attach_store
from repro.monitoring.store import (
    IngestBatch,
    IngestRun,
    MetricStore,
    SegmentSpill,
)

CPU = Metric.CPU_USAGE


def _run_batch(component, start, values, watermark=None):
    return IngestBatch(
        runs=[
            IngestRun(
                component, CPU, start, np.asarray(values, dtype=np.float64)
            )
        ],
        watermark=watermark,
    )


def _tick_by_tick(store, component, values, start=0):
    for i, value in enumerate(values):
        t = start + i
        store.ingest(_run_batch(component, t, [float(value)], watermark=t + 1))


class TestRetentionOverwrite:
    def test_overwrite_at_capacity_boundary(self):
        store = MetricStore(retention=8)
        store.ingest(_run_batch("c", 0, np.arange(12.0), watermark=12))
        series = store.series("c", CPU)
        assert store.length == 12
        assert series.start == 4
        np.testing.assert_array_equal(series.values, np.arange(4.0, 12.0))
        assert store.retained_start("c", CPU) == 4

    def test_exact_capacity_is_not_evicted(self):
        store = MetricStore(retention=8)
        store.ingest(_run_batch("c", 0, np.arange(8.0), watermark=8))
        series = store.series("c", CPU)
        assert series.start == 0
        np.testing.assert_array_equal(series.values, np.arange(8.0))

    def test_oversized_run_keeps_newest_samples(self):
        store = MetricStore(retention=4)
        store.ingest(_run_batch("c", 0, np.arange(10.0), watermark=10))
        series = store.series("c", CPU)
        assert series.start == 6
        np.testing.assert_array_equal(series.values, np.arange(6.0, 10.0))

    def test_steady_state_is_allocation_free(self):
        store = MetricStore(retention=8)
        _tick_by_tick(store, "c", range(8))
        ring = store._series[("c", CPU)]
        buffer_before = ring.values
        _tick_by_tick(store, "c", range(8, 40), start=8)
        assert store._series[("c", CPU)].values is buffer_before


class TestWrapSeamReads:
    def test_window_spanning_the_wrap_seam(self):
        store = MetricStore(retention=8)
        _tick_by_tick(store, "c", range(13))
        # Retained slots are [5, 13); physical positions wrap at 8.
        window = store.window("c", CPU, 6, 12)
        assert window.start == 6
        np.testing.assert_array_equal(window.values, np.arange(6.0, 12.0))

    def test_wrapped_series_is_one_zero_copy_view(self):
        store = MetricStore(retention=8)
        _tick_by_tick(store, "c", range(13))
        series = store.series("c", CPU)
        assert series.start == 5
        np.testing.assert_array_equal(series.values, np.arange(5.0, 13.0))
        # The mirror guarantees contiguity: a view, never a copy.
        assert series.values.base is not None


class TestEvictedBackfill:
    def test_rejected_with_counted_drop(self):
        policy = DataQualityPolicy(max_skew=100)
        store = MetricStore(policy=policy, retention=8)
        store.ingest(_run_batch("c", 0, np.arange(12.0), watermark=12))
        revision_before = store.revision
        store.ingest("c", CPU, 1, 99.0)  # slot 1 was evicted at slot 12
        assert store.revision == revision_before
        assert store.series_quality("c", CPU).late_dropped == 1
        series = store.series("c", CPU)
        assert series.start == 4
        np.testing.assert_array_equal(series.values, np.arange(4.0, 12.0))

    def test_retained_backfill_still_repairs(self):
        policy = DataQualityPolicy(max_skew=100, fill="none")
        store = MetricStore(policy=policy, retention=8)
        store.ingest(_run_batch("c", 0, np.arange(10.0), watermark=10))
        store.ingest("c", CPU, 4, float("nan"))  # duplicate -> dropped
        assert store.series_quality("c", CPU).duplicates == 1


class TestMisalignedTicks:
    def test_skipped_tick_raises_on_next_ingest(self):
        store = MetricStore()
        store.ingest(
            IngestBatch(
                samples=[
                    MetricSample("a", CPU, 0, 1.0),
                    MetricSample("b", CPU, 0, 1.0),
                ],
                watermark=1,
            )
        )
        # "b" skips tick 1; its next sample at t=2 leaves a hole the
        # strict preset refuses to paper over.
        store.ingest(IngestBatch(samples=[MetricSample("a", CPU, 1, 2.0)]))
        with pytest.raises(DataQualityError, match="gap of 1 tick"):
            store.ingest(
                IngestBatch(samples=[MetricSample("b", CPU, 2, 2.0)])
            )

    def test_aligned_ticks_advance_cleanly(self):
        store = MetricStore()
        for t in range(3):
            store.ingest(
                IngestBatch(
                    samples=[
                        MetricSample("a", CPU, t, float(t)),
                        MetricSample("b", CPU, t, float(t)),
                    ],
                    watermark=t + 1,
                )
            )
        assert store.length == 3


class TestStrictPreset:
    @staticmethod
    def _sample(t, value=1.0):
        return MetricSample("c", CPU, t, value)

    def test_gap_raises(self):
        store = MetricStore()
        store.ingest(IngestBatch(samples=[self._sample(0)]))
        with pytest.raises(DataQualityError, match="gap of 1 tick"):
            store.ingest(IngestBatch(samples=[self._sample(2)]))

    def test_out_of_order_raises(self):
        store = MetricStore()
        store.ingest(IngestBatch(samples=[self._sample(0), self._sample(1)]))
        with pytest.raises(DataQualityError, match="append-only"):
            store.ingest(IngestBatch(samples=[self._sample(0, 5.0)]))

    def test_non_finite_raises(self):
        store = MetricStore()
        with pytest.raises(DataQualityError, match="non-finite"):
            store.ingest(IngestBatch(samples=[self._sample(0, float("nan"))]))

    def test_late_joiner_first_sample_pads_missing_prefix(self):
        store = MetricStore()
        store.ingest(
            IngestBatch(
                samples=[MetricSample("late", CPU, 5, 7.0)], watermark=6
            )
        )
        series = store.series("late", CPU)
        assert series.start == 0
        assert np.isnan(np.asarray(series.values[:5])).all()
        assert series.values[5] == 7.0

    def test_scalar_ingest_requires_policy(self):
        store = MetricStore()
        with pytest.raises(DataQualityError, match="policy"):
            store.ingest("c", CPU, 0, 1.0)


class TestUnifiedIngest:
    def test_runs_match_scalar_samples(self):
        values = np.linspace(1.0, 9.0, 9)
        scalar = MetricStore(policy=DataQualityPolicy())
        for t, value in enumerate(values):
            scalar.ingest("c", CPU, t, float(value))
        scalar.advance_to(len(values))
        batched = MetricStore()
        batched.ingest(_run_batch("c", 0, values, watermark=len(values)))
        left = scalar.series("c", CPU)
        right = batched.series("c", CPU)
        assert left.start == right.start
        np.testing.assert_array_equal(left.values, right.values)

    def test_batch_takes_no_extra_arguments(self):
        store = MetricStore()
        with pytest.raises(TypeError, match="no extra arguments"):
            store.ingest(IngestBatch(), CPU, 0, 1.0)


class TestDeprecationCycleFinished:
    def test_wrapper_methods_are_gone(self):
        store = MetricStore()
        for name in ("record", "advance", "record_at"):
            assert not hasattr(store, name), (
                f"MetricStore.{name}() was scheduled for removal after "
                "one deprecation release — write through ingest()"
            )


class TestSegmentSpill:
    def test_evicted_slots_round_trip(self, tmp_path):
        spill = SegmentSpill(tmp_path, segment_slots=4)
        store = MetricStore(retention=8, spill=spill)
        _tick_by_tick(store, "c", range(20))
        assert spill.slots_spilled("c", CPU) == 12
        archived = store.spilled_series("c", CPU)
        assert archived.start == 0
        np.testing.assert_array_equal(
            np.asarray(archived.values), np.arange(12.0)
        )
        live = store.series("c", CPU)
        assert live.start == 12
        np.testing.assert_array_equal(live.values, np.arange(12.0, 20.0))

    def test_no_spill_configured_returns_none(self):
        store = MetricStore(retention=8)
        _tick_by_tick(store, "c", range(20))
        assert store.spilled_series("c", CPU) is None


class TestSharedWrappedStore:
    def test_export_attach_round_trip_after_wrap(self):
        store = MetricStore(retention=8)
        store.ingest(_run_batch("c", 0, np.arange(12.0), watermark=12))
        with SharedStoreExport(store) as export:
            attached = attach_store(export.handle)
            series = attached.series("c", CPU)
            assert series.start == 4
            np.testing.assert_array_equal(
                np.asarray(series.values), np.arange(4.0, 12.0)
            )

    def test_attached_snapshot_is_read_only(self):
        store = MetricStore(retention=8)
        store.ingest(_run_batch("c", 0, np.arange(12.0), watermark=12))
        with SharedStoreExport(store) as export:
            attached = attach_store(export.handle)
            with pytest.raises(RuntimeError, match="read-only"):
                attached.ingest(
                    _run_batch("c", 12, [1.0], watermark=13)
                )
