"""Tests for metric store CSV import/export."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.common.rng import spawn_rng
from repro.common.types import METRIC_NAMES, Metric
from repro.monitoring.io import load_store_csv, save_store_csv
from repro.monitoring.store import MetricStore


def sample_store(length=50, start=100):
    rng = spawn_rng("io")
    return MetricStore.from_arrays(
        {
            "web": {m: 10 + rng.random(length) for m in METRIC_NAMES},
            "db": {Metric.CPU_USAGE: rng.random(length)},
        },
        start=start,
    )


class TestRoundTrip:
    def test_values_preserved(self, tmp_path):
        store = sample_store()
        path = tmp_path / "m.csv"
        save_store_csv(store, path)
        loaded = load_store_csv(path)
        assert loaded.components == store.components
        assert loaded.length == store.length
        for component in store.components:
            for metric in store.metrics_for(component):
                np.testing.assert_allclose(
                    loaded.series(component, metric).values,
                    store.series(component, metric).values,
                )

    def test_start_time_preserved(self, tmp_path):
        store = sample_store(start=777)
        path = tmp_path / "m.csv"
        save_store_csv(store, path)
        assert load_store_csv(path).start == 777

    def test_row_order_irrelevant(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "time,component,metric,value\n"
            "1,a,cpu_usage,2.0\n"
            "0,a,cpu_usage,1.0\n"
        )
        store = load_store_csv(path)
        assert list(store.series("a", Metric.CPU_USAGE).values) == [1.0, 2.0]


class TestValidation:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("t,c,m,v\n0,a,cpu_usage,1.0\n")
        with pytest.raises(ReproError, match="header"):
            load_store_csv(path)

    def test_unknown_metric(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("time,component,metric,value\n0,a,nope,1.0\n")
        with pytest.raises(ReproError, match="bad row"):
            load_store_csv(path)

    def test_gap_rejected(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "time,component,metric,value\n"
            "0,a,cpu_usage,1.0\n"
            "2,a,cpu_usage,3.0\n"
        )
        with pytest.raises(ReproError, match="gaps"):
            load_store_csv(path)

    def test_ragged_ranges_rejected(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "time,component,metric,value\n"
            "0,a,cpu_usage,1.0\n"
            "0,b,cpu_usage,1.0\n"
            "1,b,cpu_usage,2.0\n"
        )
        with pytest.raises(ReproError, match="time ranges"):
            load_store_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("time,component,metric,value\n")
        with pytest.raises(ReproError, match="no samples"):
            load_store_csv(path)


class TestAnalyzeCli:
    def test_analyze_pinpoints_fault(self, tmp_path, rubis_cpuhog_run, capsys):
        from repro.cli import main

        app, violation = rubis_cpuhog_run
        path = tmp_path / "metrics.csv"
        save_store_csv(app.store, path)
        code = main(
            ["analyze", str(path), "--violation", str(violation)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "db" in out and "FAULTY" in out
