"""Tests for the data-quality resilience layer (policy, ingest, reports).

Covers the tolerant timestamped ingestion path of ``MetricStore`` —
validation, bounded gap fill, clock-skew alignment, out-of-order
backfill, duplicate resolution — plus the ``SeriesQuality`` /
``DataQualityReport`` bookkeeping and the tolerant CSV loader. The
companion regression ``TestCleanPathUnchanged`` pins the tentpole
invariant: a policy-enabled store fed clean data is indistinguishable
from a plain store.
"""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, DataQualityError
from repro.common.types import Metric
from repro.monitoring.io import load_store_csv, save_store_csv
from repro.monitoring.quality import (
    CONFIDENCE_DEGRADED,
    CONFIDENCE_FULL,
    CONFIDENCE_INCONCLUSIVE,
    DataQualityPolicy,
    DataQualityReport,
    SeriesQuality,
)
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore

CPU = Metric.CPU_USAGE


def ingest_series(store, values_by_time, component="web", metric=CPU):
    for t, value in values_by_time:
        store.ingest(component, metric, t, value)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = DataQualityPolicy()
        assert policy.fill == "interpolate"
        assert policy.min_coverage == 0.6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_invalid": "explode"},
            {"fill": "spline"},
            {"on_duplicate": "merge"},
            {"max_gap": -1},
            {"max_skew": -2},
            {"min_coverage": 1.5},
        ],
    )
    def test_rejects_bad_settings(self, kwargs):
        with pytest.raises(ConfigurationError):
            DataQualityPolicy(**kwargs)


class TestIngest:
    def test_requires_policy(self):
        store = MetricStore()
        with pytest.raises(DataQualityError, match="policy"):
            store.ingest("web", CPU, 0, 1.0)

    def test_contiguous_samples_match_strict_path(self):
        tolerant = MetricStore(policy=DataQualityPolicy())
        strict = MetricStore()
        for t in range(20):
            tolerant.ingest("web", CPU, t, float(t))
            strict.ingest(
                IngestBatch(
                    runs=[IngestRun("web", CPU, t, np.asarray([float(t)]))],
                    watermark=t + 1,
                )
            )
        tolerant.advance_to(20)
        np.testing.assert_array_equal(
            tolerant.series("web", CPU).values,
            strict.series("web", CPU).values,
        )
        qual = tolerant.series_quality("web", CPU)
        assert qual.observed == 20
        assert qual.filled == qual.missing == qual.dropped == 0
        assert tolerant.revision == 0

    def test_short_gap_is_interpolated(self):
        store = MetricStore(policy=DataQualityPolicy(max_gap=3))
        ingest_series(store, [(0, 10.0), (1, 11.0), (4, 14.0)])
        store.advance_to(5)
        np.testing.assert_allclose(
            store.series("web", CPU).values, [10.0, 11.0, 12.0, 13.0, 14.0]
        )
        qual = store.series_quality("web", CPU)
        assert qual.filled_interpolated == 2
        assert qual.missing == 0

    def test_forward_fill_repeats_last_observation(self):
        store = MetricStore(
            policy=DataQualityPolicy(fill="forward", max_gap=3)
        )
        ingest_series(store, [(0, 10.0), (3, 16.0)])
        store.advance_to(4)
        np.testing.assert_allclose(
            store.series("web", CPU).values, [10.0, 10.0, 10.0, 16.0]
        )
        assert store.series_quality("web", CPU).filled_forward == 2

    def test_long_gap_stays_missing(self):
        store = MetricStore(policy=DataQualityPolicy(max_gap=2))
        ingest_series(store, [(0, 1.0), (5, 6.0)])
        store.advance_to(6)
        values = store.series("web", CPU).values
        assert np.isnan(values[1:5]).all()
        qual = store.series_quality("web", CPU)
        assert qual.missing == 4
        assert qual.filled == 0

    def test_fill_none_leaves_gaps(self):
        store = MetricStore(policy=DataQualityPolicy(fill="none"))
        ingest_series(store, [(0, 1.0), (2, 3.0)])
        store.advance_to(3)
        assert math.isnan(store.series("web", CPU).values[1])

    def test_invalid_sample_becomes_gap(self):
        store = MetricStore(policy=DataQualityPolicy())
        ingest_series(store, [(0, 1.0), (1, math.nan), (2, 3.0)])
        store.advance_to(3)
        qual = store.series_quality("web", CPU)
        assert qual.invalid == 1
        # The NaN tick is a slot like any other; it stays NaN until a
        # late delivery repairs it.
        assert math.isnan(store.series("web", CPU).values[1])

    def test_invalid_sample_rejected_under_strict_policy(self):
        store = MetricStore(policy=DataQualityPolicy(on_invalid="reject"))
        with pytest.raises(DataQualityError, match="non-finite"):
            store.ingest("web", CPU, 0, math.inf)


class TestSkewAlignment:
    def test_constant_offset_is_learned_and_removed(self):
        store = MetricStore(policy=DataQualityPolicy(max_skew=5))
        for t in range(10):
            store.ingest("web", CPU, t + 3, float(t))
        store.advance_to(10)
        np.testing.assert_allclose(
            store.series("web", CPU).values, np.arange(10.0)
        )
        assert store.series_quality("web", CPU).skew_offset == 3

    def test_offset_beyond_tolerance_is_a_gap_not_skew(self):
        store = MetricStore(policy=DataQualityPolicy(max_skew=2, max_gap=2))
        store.ingest("web", CPU, 8, 1.0)
        store.advance_to(9)
        qual = store.series_quality("web", CPU)
        assert qual.skew_offset == 0
        assert qual.missing == 8

    def test_alignment_can_be_disabled(self):
        store = MetricStore(
            policy=DataQualityPolicy(align_skew=False, max_gap=10)
        )
        store.ingest("web", CPU, 3, 1.0)
        store.advance_to(4)
        assert store.series_quality("web", CPU).skew_offset == 0
        assert len(store.series("web", CPU)) == 4


class TestBackfill:
    def test_late_sample_repairs_missing_slot(self):
        store = MetricStore(policy=DataQualityPolicy(max_gap=0, max_skew=5))
        ingest_series(store, [(0, 1.0), (2, 3.0), (1, 2.0)])
        store.advance_to(3)
        np.testing.assert_allclose(
            store.series("web", CPU).values, [1.0, 2.0, 3.0]
        )
        qual = store.series_quality("web", CPU)
        assert qual.late_accepted == 1
        assert qual.missing == 0
        assert store.revision == 1

    def test_late_sample_replaces_synthesized_fill(self):
        store = MetricStore(policy=DataQualityPolicy(max_gap=3, max_skew=5))
        ingest_series(store, [(0, 10.0), (2, 30.0), (1, 99.0)])
        store.advance_to(3)
        assert store.series("web", CPU).values[1] == 99.0
        qual = store.series_quality("web", CPU)
        assert qual.filled_interpolated == 0
        assert qual.observed == 3

    def test_stale_sample_is_dropped(self):
        store = MetricStore(policy=DataQualityPolicy(max_gap=0, max_skew=2))
        ingest_series(store, [(0, 1.0), (8, 9.0), (1, 2.0)])
        store.advance_to(9)
        qual = store.series_quality("web", CPU)
        assert qual.late_dropped == 1
        assert math.isnan(store.series("web", CPU).values[1])

    def test_duplicate_first_keeps_original(self):
        store = MetricStore(policy=DataQualityPolicy())
        ingest_series(store, [(0, 1.0), (1, 2.0), (1, 7.0)])
        store.advance_to(2)
        assert store.series("web", CPU).values[1] == 2.0
        assert store.series_quality("web", CPU).duplicates == 1

    def test_duplicate_last_overwrites(self):
        store = MetricStore(policy=DataQualityPolicy(on_duplicate="last"))
        ingest_series(store, [(0, 1.0), (1, 2.0), (1, 7.0)])
        store.advance_to(2)
        assert store.series("web", CPU).values[1] == 7.0
        assert store.revision == 1

    def test_duplicate_reject_raises(self):
        store = MetricStore(policy=DataQualityPolicy(on_duplicate="reject"))
        with pytest.raises(DataQualityError, match="duplicate"):
            ingest_series(store, [(0, 1.0), (1, 2.0), (1, 7.0)])


class TestQualityAccounting:
    def test_quality_for_merges_metrics(self):
        store = MetricStore(policy=DataQualityPolicy(max_gap=0))
        ingest_series(store, [(0, 1.0), (2, 3.0)], metric=Metric.CPU_USAGE)
        ingest_series(
            store, [(0, 1.0), (1, 2.0)], metric=Metric.MEMORY_USAGE
        )
        total = store.quality_for("web")
        assert total.observed == 4
        assert total.missing == 1

    def test_snapshot_is_detached_and_complete(self):
        qual = SeriesQuality(observed=3, gap_slots={4: "forward"})
        snap = qual.snapshot()
        snap.gap_slots[9] = "missing"
        assert 9 not in qual.gap_slots
        assert snap.observed == 3 and snap.gap_slots[4] == "forward"

    def test_report_grades(self):
        clean = DataQualityReport.build(
            component="web", samples_expected=100, samples_observed=100,
            samples_filled=0, samples_missing=0, samples_dropped=0,
            metrics_total=2, metrics_analyzed=2, metrics_inconclusive=0,
        )
        assert clean.confidence == CONFIDENCE_FULL and clean.clean
        degraded = DataQualityReport.build(
            component="web", samples_expected=100, samples_observed=90,
            samples_filled=10, samples_missing=0, samples_dropped=0,
            metrics_total=2, metrics_analyzed=2, metrics_inconclusive=0,
        )
        assert degraded.confidence == CONFIDENCE_DEGRADED
        assert degraded.coverage == pytest.approx(0.9)
        inconclusive = DataQualityReport.build(
            component="web", samples_expected=100, samples_observed=30,
            samples_filled=0, samples_missing=70, samples_dropped=0,
            metrics_total=2, metrics_analyzed=0, metrics_inconclusive=2,
        )
        assert inconclusive.confidence == CONFIDENCE_INCONCLUSIVE


class TestTolerantCsvLoad:
    def test_holey_csv_loads_under_policy(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "time,component,metric,value\n"
            "0,web,cpu_usage,1.0\n"
            "1,web,cpu_usage,2.0\n"
            "4,web,cpu_usage,5.0\n"
        )
        with pytest.raises(Exception):
            load_store_csv(path)  # the strict loader still rejects holes
        store = load_store_csv(path, policy=DataQualityPolicy(max_gap=5))
        np.testing.assert_allclose(
            store.series("web", CPU).values, [1.0, 2.0, 3.0, 4.0, 5.0]
        )
        assert store.series_quality("web", CPU).filled_interpolated == 2

    def test_clean_csv_identical_between_loaders(self, tmp_path):
        store = MetricStore.from_arrays(
            {"web": {CPU: np.linspace(1, 9, 30)}}, start=50
        )
        path = tmp_path / "m.csv"
        save_store_csv(store, path)
        strict = load_store_csv(path)
        tolerant = load_store_csv(path, policy=DataQualityPolicy())
        assert strict.start == tolerant.start
        assert strict.length == tolerant.length
        np.testing.assert_array_equal(
            strict.series("web", CPU).values,
            tolerant.series("web", CPU).values,
        )
