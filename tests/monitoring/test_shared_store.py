"""Tests for the shared-memory MetricStore export/attach roundtrip."""

import numpy as np
import pytest

from repro.common.types import Metric
from repro.monitoring.shared import SharedStoreExport, attach_store
from repro.monitoring.store import MetricStore


def _example_store():
    rng = np.random.default_rng(42)
    data = {
        comp: {
            Metric.CPU_USAGE: rng.normal(40, 5, 120),
            Metric.MEMORY_USAGE: rng.normal(60, 2, 120),
        }
        for comp in ("node-a", "node-b", "node-c")
    }
    return MetricStore.from_arrays(data, start=7)


class TestRoundtrip:
    def test_attached_store_reads_identically(self):
        store = _example_store()
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            assert view.components == store.components
            assert view.start == store.start
            assert view.length == store.length
            for component in store.components:
                assert view.metrics_for(component) == store.metrics_for(
                    component
                )
                for metric in store.metrics_for(component):
                    original = store.series(component, metric)
                    attached = view.series(component, metric)
                    assert attached.start == original.start
                    np.testing.assert_array_equal(
                        attached.values, original.values
                    )

    def test_windows_match(self):
        store = _example_store()
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            got = view.window("node-b", Metric.CPU_USAGE, 30, 90)
            want = store.window("node-b", Metric.CPU_USAGE, 30, 90)
            np.testing.assert_array_equal(got.values, want.values)

    def test_attach_is_zero_copy(self):
        store = _example_store()
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            series = view.series("node-a", Metric.CPU_USAGE)
            # The series must be a view into the shared segment, not a
            # per-attach copy of the history.
            assert series.values.base is not None

    def test_handle_is_picklable(self):
        import pickle

        store = _example_store()
        with SharedStoreExport(store) as export:
            clone = pickle.loads(pickle.dumps(export.handle))
            assert clone == export.handle


class TestLifecycle:
    def test_close_is_idempotent(self):
        export = SharedStoreExport(_example_store())
        export.close()
        export.close()

    def test_attach_after_unlink_fails(self):
        export = SharedStoreExport(_example_store())
        handle = export.handle
        export.close()
        with pytest.raises(FileNotFoundError):
            attach_store(handle)

    def test_empty_store_roundtrip(self):
        store = MetricStore(start=0)
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            assert view.components == []
            assert view.length == 0
