"""Tests for the shared-memory MetricStore export/attach roundtrip."""

import numpy as np
import pytest

from repro.common.types import Metric
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.shared import (
    SharedStoreExport,
    attach_store,
    materialize_store,
)
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore


def _example_store():
    rng = np.random.default_rng(42)
    data = {
        comp: {
            Metric.CPU_USAGE: rng.normal(40, 5, 120),
            Metric.MEMORY_USAGE: rng.normal(60, 2, 120),
        }
        for comp in ("node-a", "node-b", "node-c")
    }
    return MetricStore.from_arrays(data, start=7)


class TestRoundtrip:
    def test_attached_store_reads_identically(self):
        store = _example_store()
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            assert view.components == store.components
            assert view.start == store.start
            assert view.length == store.length
            for component in store.components:
                assert view.metrics_for(component) == store.metrics_for(
                    component
                )
                for metric in store.metrics_for(component):
                    original = store.series(component, metric)
                    attached = view.series(component, metric)
                    assert attached.start == original.start
                    np.testing.assert_array_equal(
                        attached.values, original.values
                    )

    def test_windows_match(self):
        store = _example_store()
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            got = view.window("node-b", Metric.CPU_USAGE, 30, 90)
            want = store.window("node-b", Metric.CPU_USAGE, 30, 90)
            np.testing.assert_array_equal(got.values, want.values)

    def test_attach_is_zero_copy(self):
        store = _example_store()
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            series = view.series("node-a", Metric.CPU_USAGE)
            # The series must be a view into the shared segment, not a
            # per-attach copy of the history.
            assert series.values.base is not None

    def test_handle_is_picklable(self):
        import pickle

        store = _example_store()
        with SharedStoreExport(store) as export:
            clone = pickle.loads(pickle.dumps(export.handle))
            assert clone == export.handle


class TestLifecycle:
    def test_close_is_idempotent(self):
        export = SharedStoreExport(_example_store())
        export.close()
        export.close()

    def test_attach_after_unlink_fails(self):
        export = SharedStoreExport(_example_store())
        handle = export.handle
        export.close()
        with pytest.raises(FileNotFoundError):
            attach_store(handle)

    def test_empty_store_roundtrip(self):
        store = MetricStore(start=0)
        with SharedStoreExport(store) as export:
            view = attach_store(export.handle)
            assert view.components == []
            assert view.length == 0


class TestMaterialize:
    """``materialize_store`` rebuilds a *writable* store from a segment.

    Unlike ``attach_store`` (a read-only zero-copy view), the
    materialized store owns fresh ring buffers — it is what a shard
    worker continues ingesting into after a tenant relocation.
    """

    def test_materialized_store_reads_and_keeps_writing(self):
        store = _example_store()
        with SharedStoreExport(store) as export:
            rebuilt = materialize_store(export.handle)
        assert rebuilt.components == store.components
        assert rebuilt.start == store.start
        assert rebuilt.length == store.length
        assert rebuilt.revision == store.revision
        for component in store.components:
            for metric in store.metrics_for(component):
                left = store.series(component, metric)
                right = rebuilt.series(component, metric)
                assert left.start == right.start
                np.testing.assert_array_equal(left.values, right.values)
        # The segment is gone (context manager exit) — the rebuilt
        # store must live on independently and accept new ticks.
        end = rebuilt.end
        rebuilt.ingest(
            IngestBatch(
                runs=[
                    IngestRun(
                        component, metric, end, np.asarray([1.0])
                    )
                    for component in rebuilt.components
                    for metric in rebuilt.metrics_for(component)
                ],
                watermark=end + 1,
            )
        )
        assert rebuilt.end == end + 1

    def test_wrapped_store_materializes_identically(self):
        store = MetricStore(retention=8)
        store.ingest(
            IngestBatch(
                runs=[
                    IngestRun(
                        "c", Metric.CPU_USAGE, 0, np.arange(13.0)
                    )
                ],
                watermark=13,
            )
        )
        with SharedStoreExport(store) as export:
            rebuilt = materialize_store(export.handle, retention=8)
        left = store.series("c", Metric.CPU_USAGE)
        right = rebuilt.series("c", Metric.CPU_USAGE)
        assert right.start == left.start == 5
        np.testing.assert_array_equal(left.values, right.values)
        assert rebuilt.retained_start("c", Metric.CPU_USAGE) == 5
        # Eviction keeps behaving: one more run pushes the window.
        rebuilt.ingest(
            IngestBatch(
                runs=[
                    IngestRun(
                        "c", Metric.CPU_USAGE, 13, np.asarray([13.0])
                    )
                ],
                watermark=14,
            )
        )
        assert rebuilt.series("c", Metric.CPU_USAGE).start == 6

    def test_gap_bitmap_survives_materialization(self):
        policy = DataQualityPolicy(fill="forward")
        store = MetricStore(policy=policy)
        store.ingest("c", Metric.CPU_USAGE, 0, 1.0)
        store.ingest("c", Metric.CPU_USAGE, 3, 4.0)  # gap at 1, 2
        store.advance_to(4)
        before = store.series_quality("c", Metric.CPU_USAGE)
        with SharedStoreExport(store) as export:
            rebuilt = materialize_store(export.handle)
        after = rebuilt.series_quality("c", Metric.CPU_USAGE)
        assert after.gap_slots == before.gap_slots
        assert after.filled_forward == before.filled_forward
        assert after.observed == before.observed
