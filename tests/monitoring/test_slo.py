"""Tests for SLO detectors."""

import pytest

from repro.monitoring.slo import LatencySLO, ProgressSLO


class TestLatencySLO:
    def test_no_violation_below_threshold(self):
        slo = LatencySLO(0.1, sustain=3)
        for t in range(10):
            status = slo.observe(t, 0.05)
        assert not status.violated
        assert slo.first_violation is None

    def test_sustained_breach_required(self):
        slo = LatencySLO(0.1, sustain=3)
        slo.observe(0, 0.5)
        slo.observe(1, 0.5)
        assert not slo.observe(2, 0.05).violated  # broken streak
        slo.observe(3, 0.5)
        slo.observe(4, 0.5)
        assert slo.observe(5, 0.5).violated
        assert slo.first_violation == 5

    def test_infinite_latency_counts(self):
        slo = LatencySLO(0.1, sustain=2)
        slo.observe(0, float("inf"))
        assert slo.observe(1, float("inf")).violated

    def test_violation_ticks_recorded(self):
        slo = LatencySLO(0.1, sustain=1)
        slo.observe(0, 0.05)
        slo.observe(1, 0.5)
        slo.observe(2, 0.5)
        assert slo.violation_ticks == [1, 2]

    def test_first_violation_after(self):
        slo = LatencySLO(0.1, sustain=1)
        for t, v in enumerate([0.5, 0.05, 0.5]):
            slo.observe(t, v)
        assert slo.first_violation_after(1) == 2
        assert slo.first_violation_after(3) is None

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LatencySLO(0.0)
        with pytest.raises(ValueError):
            LatencySLO(0.1, sustain=0)

    def test_performance_series(self):
        slo = LatencySLO(0.1)
        slo.observe(5, 0.01)
        slo.observe(6, 0.02)
        series = slo.performance_series()
        assert series.start == 5
        assert list(series.values) == [0.01, 0.02]


class TestProgressSLO:
    def test_steady_progress_ok(self):
        slo = ProgressSLO(stall_seconds=5, min_delta=0.001)
        for t in range(20):
            status = slo.observe(t, t * 0.01)
        assert not status.violated

    def test_stall_detected(self):
        slo = ProgressSLO(stall_seconds=5, min_delta=0.001)
        for t in range(10):
            slo.observe(t, t * 0.01)
        violated = False
        for t in range(10, 20):
            violated = slo.observe(t, 0.09).violated or violated
        assert violated

    def test_no_violation_before_window_full(self):
        slo = ProgressSLO(stall_seconds=30)
        for t in range(20):
            assert not slo.observe(t, 0.0).violated

    def test_finished_job_not_violating(self):
        slo = ProgressSLO(stall_seconds=3, min_delta=0.001)
        for t in range(10):
            status = slo.observe(t, 1.0)
        assert not status.violated

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ProgressSLO(stall_seconds=0)
