"""Tests for SLO detectors."""

import math

import pytest

from repro.monitoring.slo import LatencySLO, ProgressSLO


class TestLatencySLO:
    def test_no_violation_below_threshold(self):
        slo = LatencySLO(0.1, sustain=3)
        for t in range(10):
            status = slo.observe(t, 0.05)
        assert not status.violated
        assert slo.first_violation is None

    def test_sustained_breach_required(self):
        slo = LatencySLO(0.1, sustain=3)
        slo.observe(0, 0.5)
        slo.observe(1, 0.5)
        assert not slo.observe(2, 0.05).violated  # broken streak
        slo.observe(3, 0.5)
        slo.observe(4, 0.5)
        assert slo.observe(5, 0.5).violated
        assert slo.first_violation == 5

    def test_infinite_latency_counts(self):
        slo = LatencySLO(0.1, sustain=2)
        slo.observe(0, float("inf"))
        assert slo.observe(1, float("inf")).violated

    def test_violation_ticks_recorded(self):
        slo = LatencySLO(0.1, sustain=1)
        slo.observe(0, 0.05)
        slo.observe(1, 0.5)
        slo.observe(2, 0.5)
        assert slo.violation_ticks == [1, 2]

    def test_first_violation_after(self):
        slo = LatencySLO(0.1, sustain=1)
        for t, v in enumerate([0.5, 0.05, 0.5]):
            slo.observe(t, v)
        assert slo.first_violation_after(1) == 2
        assert slo.first_violation_after(3) is None

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LatencySLO(0.0)
        with pytest.raises(ValueError):
            LatencySLO(0.1, sustain=0)

    def test_performance_series(self):
        slo = LatencySLO(0.1)
        slo.observe(5, 0.01)
        slo.observe(6, 0.02)
        series = slo.performance_series()
        assert series.start == 5
        assert list(series.values) == [0.01, 0.02]


class TestLatencySLOGaps:
    """Continuous-operation behaviour: gaps, duplicates, stale samples."""

    def test_gap_breaks_sustain_streak(self):
        slo = LatencySLO(0.1, sustain=3)
        slo.observe(0, 0.5)
        slo.observe(1, 0.5)
        # tick 2 lost in transit; 3 ticks above threshold were recorded,
        # but they do not span 3 *consecutive* ticks.
        assert not slo.observe(3, 0.5).violated
        slo.observe(4, 0.5)
        assert slo.observe(5, 0.5).violated

    def test_duplicate_tick_last_wins(self):
        slo = LatencySLO(0.1, sustain=2)
        slo.observe(0, 0.5)
        assert slo.observe(1, 0.5).violated
        # Re-delivery of tick 1 with a healthy reading undoes the verdict.
        assert not slo.observe(1, 0.05).violated
        assert slo.duplicates == 1
        assert slo.violation_ticks == []
        assert slo.samples == [0.5, 0.05]

    def test_stale_sample_dropped(self):
        slo = LatencySLO(0.1, sustain=1)
        slo.observe(5, 0.05)
        status = slo.observe(3, 0.5)
        assert not status.violated
        assert slo.stale_dropped == 1
        assert slo.ticks == [5]

    def test_performance_series_gap_aware(self):
        slo = LatencySLO(0.1)
        slo.observe(5, 0.01)
        slo.observe(8, 0.04)
        series = slo.performance_series()
        assert series.start == 5
        assert len(series.values) == 4
        assert series.values[0] == 0.01
        assert math.isnan(series.values[1]) and math.isnan(series.values[2])
        assert series.values[3] == 0.04


class TestRetention:
    def test_retention_bounds_history(self):
        slo = LatencySLO(0.1, sustain=2, retention=100)
        for t in range(1000):
            slo.observe(t, 0.5)
        assert len(slo.samples) <= 100 + 64  # window + trim slack
        assert slo.ticks[0] >= 999 - 100 - 64
        assert len(slo.ticks) == len(slo.samples)
        # first_violation survives trimming even once its tick expired.
        assert slo.first_violation == 1

    def test_first_violation_after_on_retained_log(self):
        slo = LatencySLO(0.1, sustain=1, retention=200)
        for t in range(1000):
            slo.observe(t, 0.5 if t % 2 else 0.05)
        assert slo.first_violation_after(995) == 995
        assert slo.first_violation_after(996) == 997
        assert slo.first_violation_after(1000) is None

    def test_reset_restores_pristine_state(self):
        slo = LatencySLO(0.1, sustain=1, retention=50)
        slo.observe(0, 0.5)
        slo.observe(0, 0.6)
        slo.observe(-1, 0.5)
        slo.reset()
        assert slo.samples == [] and slo.ticks == []
        assert slo.first_violation is None
        assert slo.violation_ticks == []
        assert slo.duplicates == 0 and slo.stale_dropped == 0
        assert not slo.observe(0, 0.05).violated

    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            LatencySLO(0.1, sustain=10, retention=10)
        with pytest.raises(ValueError):
            ProgressSLO(stall_seconds=30, retention=30)


class TestProgressSLO:
    def test_steady_progress_ok(self):
        slo = ProgressSLO(stall_seconds=5, min_delta=0.001)
        for t in range(20):
            status = slo.observe(t, t * 0.01)
        assert not status.violated

    def test_stall_detected(self):
        slo = ProgressSLO(stall_seconds=5, min_delta=0.001)
        for t in range(10):
            slo.observe(t, t * 0.01)
        violated = False
        for t in range(10, 20):
            violated = slo.observe(t, 0.09).violated or violated
        assert violated

    def test_no_violation_before_window_full(self):
        slo = ProgressSLO(stall_seconds=30)
        for t in range(20):
            assert not slo.observe(t, 0.0).violated

    def test_finished_job_not_violating(self):
        slo = ProgressSLO(stall_seconds=3, min_delta=0.001)
        for t in range(10):
            status = slo.observe(t, 1.0)
        assert not status.violated

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ProgressSLO(stall_seconds=0)
        with pytest.raises(ValueError):
            ProgressSLO(stall_seconds=5, completion=0.0)

    def test_completion_scale_percent(self):
        """Hadoop traces report percent: completion=100 must be honored."""
        slo = ProgressSLO(stall_seconds=5, min_delta=0.01, completion=100.0)
        for t in range(10):
            slo.observe(t, t * 10.0)
        # Progress pinned at 95% — a genuine stall on the percent scale.
        violated = False
        for t in range(10, 20):
            violated = slo.observe(t, 95.0).violated or violated
        assert violated

    def test_completion_scale_finished_percent(self):
        slo = ProgressSLO(stall_seconds=5, min_delta=0.01, completion=100.0)
        for t in range(10):
            slo.observe(t, t * 10.0)
        # Job done at 100%; sitting there is not a stall.
        for t in range(10, 20):
            assert not slo.observe(t, 100.0).violated

    def test_gap_widens_stall_window(self):
        slo = ProgressSLO(stall_seconds=5, min_delta=0.01)
        slo.observe(0, 0.10)
        # Ticks 1..8 lost. The reference for t=9 is the newest sample at
        # least 5 ticks old — tick 0 — so the comparison still fires.
        assert slo.observe(9, 0.10).violated
