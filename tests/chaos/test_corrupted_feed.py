"""Chaos suite: seeded corruption of a *live* feed (the online loop).

:class:`~repro.eval.chaos.CorruptedFeed` is the online counterpart of
:func:`~repro.eval.chaos.corrupt_store`: the same defect processes, but
applied to the batch stream of the service loop. The contract mirrors
the batch harness — deterministic per seed, first sample of every
series intact, delayed samples re-enter in later batches — plus the
loop-level guarantee that a corrupted stream still localizes or
explicitly hedges, and never raises.
"""

import math

import pytest

from repro.eval.bench import synthetic_store
from repro.eval.chaos import ChaosSpec, CorruptedFeed
from repro.service.sources import StoreReplayFeed

SPEC = ChaosSpec(
    seed=23,
    gap_fraction=0.08,
    nan_fraction=0.04,
    max_skew=2,
    delay_fraction=0.08,
    delay_max=3,
)


@pytest.fixture(scope="module")
def clean_store():
    return synthetic_store(samples=400, components=3, metrics=2, seed=11)


def _flatten(feed):
    return [
        (b.time, b.performance, tuple(b.samples)) for b in feed
    ]


class TestCorruptedFeedContract:
    def test_deterministic_per_seed(self, clean_store):
        runs = [
            _flatten(CorruptedFeed(StoreReplayFeed(clean_store), SPEC))
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_different_seed_differs(self, clean_store):
        a = _flatten(CorruptedFeed(StoreReplayFeed(clean_store), SPEC))
        other = ChaosSpec(
            seed=SPEC.seed + 1,
            gap_fraction=SPEC.gap_fraction,
            nan_fraction=SPEC.nan_fraction,
            max_skew=SPEC.max_skew,
            delay_fraction=SPEC.delay_fraction,
            delay_max=SPEC.delay_max,
        )
        b = _flatten(CorruptedFeed(StoreReplayFeed(clean_store), other))
        assert a != b

    def test_first_sample_per_series_intact(self, clean_store):
        corrupted = CorruptedFeed(StoreReplayFeed(clean_store), SPEC)
        clean_first = {}
        for batch in StoreReplayFeed(clean_store):
            for s in batch.samples:
                clean_first.setdefault((s.component, s.metric), s)
        seen = {}
        for batch in corrupted:
            for s in batch.samples:
                seen.setdefault((s.component, s.metric), s)
        for key, first in seen.items():
            original = clean_first[key]
            # The first delivered sample carries the (possibly skewed)
            # original reading, never a NaN and never a drop.
            assert first.value == original.value
            assert abs(first.time - original.time) <= SPEC.max_skew

    def test_delayed_samples_flushed_after_feed_ends(self, clean_store):
        spec = ChaosSpec(seed=5, delay_fraction=0.5, delay_max=10)
        batches = list(CorruptedFeed(StoreReplayFeed(clean_store), spec))
        # Trailing flush batches extend past the recording's end.
        assert batches[-1].time >= clean_store.end
        delivered = sum(len(b.samples) for b in batches)
        total = sum(
            len(b.samples) for b in StoreReplayFeed(clean_store)
        )
        assert delivered == total  # delay reorders, never loses

    def test_corrupted_stream_runs_the_loop(self, clean_store):
        """A corrupted live feed never crashes the online pipeline."""
        from repro.core.config import FChainConfig
        from repro.monitoring.slo import LatencySLO
        from repro.service import OnlinePipeline

        onset = clean_store.end - 40
        performance = {
            t: (0.5 if t >= onset else 0.01)
            for t in range(clean_store.start, clean_store.end)
        }
        feed = CorruptedFeed(
            StoreReplayFeed(clean_store, performance=performance), SPEC
        )
        pipeline = OnlinePipeline(
            feed,
            LatencySLO(0.1, sustain=5),
            config=FChainConfig(cusum_bootstraps=40),
            seed=23,
        )
        incidents = pipeline.run()
        assert not pipeline.failures
        assert pipeline.triggered >= 1
        for incident in incidents:
            assert incident.quality in {"full", "degraded", "inconclusive"}

    def test_nan_fraction_injects_nans(self, clean_store):
        spec = ChaosSpec(seed=7, nan_fraction=0.2)
        batches = list(CorruptedFeed(StoreReplayFeed(clean_store), spec))
        nans = sum(
            1
            for b in batches
            for s in b.samples
            if isinstance(s.value, float) and math.isnan(s.value)
        )
        assert nans > 0
