"""Chaos suite: seeded telemetry corruption against the full pipeline.

Each test corrupts a real faulty application run (the session-scoped
RUBiS CpuHog) with one defect class — random gaps, NaN bursts, clock
skew, delayed out-of-order delivery, VM churn — plus a kitchen-sink mix,
and asserts the resilience-layer contract:

* the diagnosis never raises;
* the output is deterministic per seed (same spec ⇒ same stored data
  and the same ``PinpointResult``);
* every component carries a populated ``DataQualityReport``;
* the verdict is either the correct localization or explicitly hedged —
  a component the layer could not examine appears in ``skipped`` with a
  reason, never silently exonerated.

Seeds come from ``FCHAIN_CHAOS_SEEDS`` (comma-separated, default
``11,23,47``) so CI can pin or rotate them without code changes.
"""

import os

import numpy as np
import pytest

from repro.apps.rubis import DB
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.eval.chaos import ChaosSpec, corrupt_store
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.store import KIND_MISSING

#: Cheap bootstraps: chaos coverage does not need tight CUSUM intervals.
CONFIG = FChainConfig(cusum_bootstraps=40)

SEEDS = [
    int(s)
    for s in os.environ.get("FCHAIN_CHAOS_SEEDS", "11,23,47").split(",")
    if s.strip()
]

DEFECTS = {
    "gaps": dict(gap_fraction=0.10),
    "nan-burst": dict(nan_fraction=0.08),
    "skew": dict(max_skew=5),
    "delay": dict(delay_fraction=0.10, delay_max=4),
    "churn": dict(churn=2, churn_max=60),
    "mix": dict(
        gap_fraction=0.05,
        nan_fraction=0.03,
        max_skew=3,
        delay_fraction=0.05,
        churn=1,
    ),
}


def _localize(store, violation, graph=None):
    with FChain(CONFIG, dependency_graph=graph) as fchain:
        return fchain.localize(store, violation_time=violation)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("defect", sorted(DEFECTS))
class TestDefectClasses:
    def test_survives_and_hedges(self, rubis_cpuhog_run, defect, seed):
        app, violation = rubis_cpuhog_run
        spec = ChaosSpec(seed=seed, **DEFECTS[defect])
        store = corrupt_store(app.store, spec)
        diagnosis = _localize(store, violation)

        # Every component's report carries a populated quality summary.
        assert set(diagnosis.quality) == set(store.components)
        for component, report in diagnosis.quality.items():
            assert report.component == component
            assert report.samples_expected > 0
            assert 0.0 <= report.coverage <= 1.0
            assert report.confidence in ("full", "degraded", "inconclusive")

        # The verdict is the true culprit or an explicit hedge — never a
        # wrong component presented with full confidence.
        if DB in diagnosis.faulty:
            assert True
        elif DB in diagnosis.skipped:
            assert diagnosis.skipped_reasons[DB]
            assert diagnosis.confidence != "full"
        else:
            assert diagnosis.is_inconclusive or not diagnosis.faulty

    def test_deterministic_per_seed(self, rubis_cpuhog_run, defect, seed):
        app, violation = rubis_cpuhog_run
        spec = ChaosSpec(seed=seed, **DEFECTS[defect])
        first = corrupt_store(app.store, spec)
        second = corrupt_store(app.store, spec)
        for component in first.components:
            for metric in first.metrics_for(component):
                np.testing.assert_array_equal(
                    first.series(component, metric).values,
                    second.series(component, metric).values,
                )
        assert (
            _localize(first, violation).result
            == _localize(second, violation).result
        )


class TestZeroCorruption:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ingest_replay_is_bit_identical(self, rubis_cpuhog_run, seed):
        """A corruption-free replay must not perturb the diagnosis at all."""
        app, violation = rubis_cpuhog_run
        baseline = _localize(app.store, violation)
        replayed = corrupt_store(app.store, ChaosSpec(seed=seed))
        diagnosis = _localize(replayed, violation)
        assert diagnosis.result == baseline.result
        assert diagnosis.confidence == "full"
        assert all(report.clean for report in diagnosis.quality.values())


class TestTargetedChurn:
    def test_culprit_silent_across_window_is_surfaced_not_exonerated(
        self, rubis_cpuhog_run
    ):
        """VM churn blacking out the culprit's window must be hedged."""
        app, violation = rubis_cpuhog_run
        policy = DataQualityPolicy()
        # Black out every db sample inside [t_v - W, t_v + grace].
        window = range(violation - CONFIG.look_back_window, violation + 9)
        silent = corrupt_store(app.store, ChaosSpec(seed=3), policy)
        for metric in silent.metrics_for(DB):
            ring = silent._series[(DB, metric)]
            qual = silent._quality[(DB, metric)]
            for t in window:
                slot = t - silent.start
                in_range = ring.first <= slot < ring.head
                if in_range and not np.isnan(ring.value_at(slot)):
                    ring.write_at(slot, float("nan"))
                    ring.set_kind(slot, KIND_MISSING)
                    qual.observed -= 1
                    qual.missing += 1
        diagnosis = _localize(silent, violation)
        assert DB not in diagnosis.faulty
        assert DB in diagnosis.skipped
        assert "coverage" in diagnosis.skipped_reasons[DB]
        assert diagnosis.confidence in ("degraded", "inconclusive")
        assert diagnosis.quality[DB].confidence == "inconclusive"
