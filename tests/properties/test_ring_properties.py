"""Property-based guarantees of the ring-buffered store.

Two contracts over generated inputs:

1. **Chunking is invisible** — ingesting a contiguous history as
   arbitrarily sized :class:`IngestRun` chunks yields a store whose
   series, and whose analysis (prediction-error streams of a synced
   slave), are bit-identical to ``from_arrays`` on the same values.
2. **Retention keeps exactly the newest window** — for any values and
   any retention, the retained series is precisely the last
   ``min(len, retention)`` samples with the right ``start``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.fchain import FChainSlave
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore

#: Cheap bootstraps keep each generated sync fast.
CONFIG = FChainConfig(cusum_bootstraps=20)

CPU = Metric.CPU_USAGE

finite_values = arrays(
    dtype=float,
    shape=st.integers(30, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


def _chunked_store(values, chunks, retention=None):
    kwargs = {} if retention is None else {"retention": retention}
    store = MetricStore(**kwargs)
    lo = 0
    for size in chunks:
        if lo >= len(values):
            break
        hi = min(lo + size, len(values))
        store.ingest(
            IngestBatch(
                runs=[IngestRun("c", CPU, lo, values[lo:hi])],
                watermark=hi,
            )
        )
        lo = hi
    if lo < len(values):
        store.ingest(
            IngestBatch(
                runs=[IngestRun("c", CPU, lo, values[lo:])],
                watermark=len(values),
            )
        )
    return store


@settings(max_examples=25, deadline=None)
@given(
    values=finite_values,
    chunks=st.lists(st.integers(1, 60), min_size=1, max_size=20),
)
def test_chunked_ingest_bit_identical_to_from_arrays(values, chunks):
    whole = MetricStore.from_arrays({"c": {CPU: values}})
    chunked = _chunked_store(values, chunks)

    left = whole.series("c", CPU)
    right = chunked.series("c", CPU)
    assert left.start == right.start
    np.testing.assert_array_equal(left.values, right.values)

    # Analysis equality: a slave synced on either store holds the same
    # prediction-error stream, bit for bit.
    one = FChainSlave(CONFIG, seed=1)
    one.sync_with_store(whole, whole.end)
    other = FChainSlave(CONFIG, seed=1)
    other.sync_with_store(chunked, chunked.end)
    np.testing.assert_array_equal(
        one._streams[("c", CPU)].view(),
        other._streams[("c", CPU)].view(),
    )


@settings(max_examples=25, deadline=None)
@given(
    values=finite_values,
    chunks=st.lists(st.integers(1, 60), min_size=1, max_size=20),
    retention=st.integers(8, 300),
)
def test_retention_keeps_exactly_the_newest_window(values, chunks, retention):
    store = _chunked_store(values, chunks, retention=retention)
    series = store.series("c", CPU)
    kept = min(len(values), retention)
    assert series.start == len(values) - kept
    np.testing.assert_array_equal(series.values, values[len(values) - kept :])
