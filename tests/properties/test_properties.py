"""Property-based tests (hypothesis) on core data structures and invariants."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.timeseries import TimeSeries
from repro.core.burst import burst_signal
from repro.core.cusum import detect_change_points
from repro.core.prediction import MarkovPredictor
from repro.core.smoothing import moving_average
from repro.eval.metrics import PrecisionRecall

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

value_arrays = arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=120),
    elements=finite_floats,
)


class TestTimeSeriesProperties:
    @given(values=value_arrays, start=st.integers(0, 1000))
    def test_window_within_bounds(self, values, start):
        ts = TimeSeries(values, start=start)
        piece = ts.window(start + 3, start + 50)
        assert piece.start >= ts.start
        assert piece.end <= ts.end
        assert len(piece) == max(0, min(start + 50, ts.end) - max(start + 3, ts.start))

    @given(values=value_arrays, radius=st.integers(0, 50))
    def test_around_symmetric_within_data(self, values, radius):
        ts = TimeSeries(values)
        centre = len(values) // 2
        piece = ts.around(centre, radius)
        assert len(piece) <= 2 * radius + 1
        assert all(v in values for v in piece.values) or len(piece) > 0


class TestSmoothingProperties:
    @given(values=value_arrays, window=st.integers(1, 15))
    def test_length_preserved(self, values, window):
        assert len(moving_average(values, window)) == len(values)

    @given(values=value_arrays, window=st.integers(1, 15))
    def test_bounded_by_extremes(self, values, window):
        out = moving_average(values, window)
        scale = 1e-9 * (1.0 + np.abs(values).max())
        assert out.min() >= values.min() - scale
        assert out.max() <= values.max() + scale

    @given(
        level=finite_floats,
        n=st.integers(3, 60),
        window=st.integers(1, 9),
    )
    def test_constant_fixed_point(self, level, n, window):
        values = np.full(n, level)
        assert moving_average(values, window) == pytest.approx(values)


class TestCusumProperties:
    @given(values=arrays(dtype=float, shape=st.integers(10, 80),
                         elements=finite_floats))
    @settings(max_examples=25, deadline=None)
    def test_points_inside_series(self, values):
        ts = TimeSeries(values, start=100)
        for point in detect_change_points(ts, bootstraps=30, seed=1):
            assert 100 <= point.time < 100 + len(values)
            assert point.magnitude >= 0
            assert point.direction in (-1, 1)
            assert 0 <= point.confidence <= 1

    @given(level=finite_floats, n=st.integers(10, 60))
    @settings(max_examples=25, deadline=None)
    def test_constant_series_no_points(self, level, n):
        ts = TimeSeries(np.full(n, level))
        assert detect_change_points(ts, bootstraps=30, seed=1) == []


class TestMarkovProperties:
    @given(
        values=arrays(
            dtype=float,
            shape=st.integers(80, 200),
            elements=st.floats(0, 1000, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_rows_remain_distributions(self, values):
        model = MarkovPredictor(bins=10, warmup=20)
        for v in values:
            model.update(float(v))
        if model.ready:
            matrix = model.transition_matrix()
            assert matrix.shape == (10, 10)
            assert np.all(matrix >= 0)
            np.testing.assert_allclose(matrix.sum(axis=1), 1.0, rtol=1e-9)

    @given(
        values=arrays(
            dtype=float,
            shape=st.integers(80, 160),
            elements=st.floats(0, 1000, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_errors_nonnegative(self, values):
        model = MarkovPredictor(bins=10, warmup=20)
        for v in values:
            error = model.update(float(v))
            assert error is None or error >= 0


class TestBurstProperties:
    @given(values=arrays(dtype=float, shape=st.integers(4, 100),
                         elements=finite_floats))
    def test_burst_zero_mean_high_pass(self, values):
        burst = burst_signal(values)
        assert len(burst) == len(values)
        # The burst signal excludes DC: its mean is ~0.
        assert abs(burst.mean()) < 1e-6 * (1 + np.abs(values).max())

    @given(
        values=arrays(dtype=float, shape=st.integers(8, 80),
                      elements=finite_floats),
        lo=st.floats(0.2, 0.5),
        hi=st.floats(0.6, 1.0),
    )
    def test_more_frequencies_more_energy(self, values, lo, hi):
        small = burst_signal(values, high_frequency_fraction=lo)
        large = burst_signal(values, high_frequency_fraction=hi)
        assert np.sum(large**2) >= np.sum(small**2) - 1e-6


class TestPrecisionRecallProperties:
    sets = st.sets(st.sampled_from(["a", "b", "c", "d", "e"]))

    @given(runs=st.lists(st.tuples(sets, sets), min_size=1, max_size=20))
    def test_metrics_in_unit_interval(self, runs):
        pr = PrecisionRecall()
        for pinpointed, truth in runs:
            pr.update(pinpointed, truth)
        assert 0.0 <= pr.precision <= 1.0
        assert 0.0 <= pr.recall <= 1.0
        assert 0.0 <= pr.f1 <= 1.0

    @given(runs=st.lists(st.tuples(sets, sets), min_size=1, max_size=20))
    def test_counts_consistent(self, runs):
        pr = PrecisionRecall()
        expected_tp = 0
        for pinpointed, truth in runs:
            pr.update(pinpointed, truth)
            expected_tp += len(pinpointed & truth)
        assert pr.true_positives == expected_tp
        assert pr.runs == len(runs)

    @given(a=st.tuples(sets, sets), b=st.tuples(sets, sets))
    def test_merge_equals_joint(self, a, b):
        separate_a, separate_b, joint = (
            PrecisionRecall(),
            PrecisionRecall(),
            PrecisionRecall(),
        )
        separate_a.update(*a)
        separate_b.update(*b)
        joint.update(*a)
        joint.update(*b)
        merged = separate_a.merged(separate_b)
        assert merged.true_positives == joint.true_positives
        assert merged.false_positives == joint.false_positives
        assert merged.false_negatives == joint.false_negatives
