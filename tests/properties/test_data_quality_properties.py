"""Property-based guarantees of the data-quality resilience layer.

Three contracts, each checked over generated inputs:

1. **Zero corruption is invisible** — replaying any clean store through
   the tolerant ingestion path yields a bit-identical ``Diagnosis``
   (same faulty set, chain, reports) and full-confidence quality.
2. **Fills never fabricate** — forward fill and interpolation stay
   inside the observed min/max of the series; a repair can smooth a
   hole, never invent an excursion.
3. **Coverage is monotone in loss** — adding gaps (supersets of missing
   slots) can only lower a window's coverage ratio, never raise it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.timeseries import TimeSeries, fill_gaps
from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.store import MetricStore

#: Cheap bootstraps keep each generated diagnosis fast.
CONFIG = FChainConfig(cusum_bootstraps=20)

finite_values = arrays(
    dtype=float,
    shape=st.integers(20, 120),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


def _store_pair(seed):
    """A clean synthetic faulty store plus its tolerant-ingest replay."""
    rng = np.random.default_rng(seed)
    samples = 220
    data = {}
    for i in range(3):
        cpu = 30 + rng.normal(0, 1.5, samples)
        if i == 1:
            cpu[-60:] += np.linspace(0, 35, 60)
        data[f"comp-{i}"] = {Metric.CPU_USAGE: cpu}
    plain = MetricStore.from_arrays(data)
    tolerant = MetricStore(policy=DataQualityPolicy())
    for component, metrics in data.items():
        for metric, values in metrics.items():
            for t, value in enumerate(values):
                tolerant.ingest(component, metric, t, float(value))
    tolerant.advance_to(samples)
    return plain, tolerant


class TestZeroCorruptionBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_tolerant_replay_matches_plain_store(self, seed):
        plain, tolerant = _store_pair(seed)
        violation = plain.end - 5
        with FChain(CONFIG) as fchain:
            baseline = fchain.localize(plain, violation_time=violation)
        with FChain(CONFIG) as fchain:
            replayed = fchain.localize(tolerant, violation_time=violation)
        assert replayed.result == baseline.result
        assert replayed.confidence == "full"
        assert all(r.clean for r in replayed.quality.values())


@st.composite
def holey_arrays(draw):
    values = draw(finite_values)
    n = len(values)
    holes = draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=n - 2, unique=True)
    )
    out = values.copy()
    out[holes] = np.nan
    # Keep at least one observation or there is nothing to fill from.
    if np.isnan(out).all():
        out[draw(st.integers(0, n - 1))] = values[0]
    return out


class TestFillsNeverFabricate:
    @settings(max_examples=200, deadline=None)
    @given(values=holey_arrays(), max_gap=st.integers(0, 20),
           method=st.sampled_from(["forward", "interpolate"]))
    def test_filled_values_stay_inside_observed_range(
        self, values, max_gap, method
    ):
        observed = values[np.isfinite(values)]
        filled, n_filled, n_missing = fill_gaps(
            values.copy(), max_gap=max_gap, method=method
        )
        repaired = filled[np.isfinite(filled)]
        assert repaired.min() >= observed.min()
        assert repaired.max() <= observed.max()
        # Accounting closes: every original hole is either repaired or
        # still missing.
        assert n_filled + n_missing == np.isnan(values).sum()
        assert np.isnan(filled).sum() == n_missing
        # Observed samples are untouched by the repair.
        mask = np.isfinite(values)
        np.testing.assert_array_equal(filled[mask], values[mask])


class TestCoverageMonotonicity:
    @settings(max_examples=150, deadline=None)
    @given(
        values=finite_values,
        seed=st.integers(0, 2**31 - 1),
        p1=st.floats(0.0, 1.0),
        p2=st.floats(0.0, 1.0),
    )
    def test_more_gaps_never_raise_coverage(self, values, seed, p1, p2):
        lo, hi = sorted((p1, p2))
        u = np.random.default_rng(seed).random(len(values))
        light = values.copy()
        light[u < lo] = np.nan
        heavy = values.copy()
        heavy[u < hi] = np.nan  # superset of the light mask
        cov_light = TimeSeries(light, start=0).coverage()
        cov_heavy = TimeSeries(heavy, start=0).coverage()
        assert cov_heavy <= cov_light
        assert 0.0 <= cov_heavy <= cov_light <= 1.0
