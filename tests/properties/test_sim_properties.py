"""Property-based tests for the queueing simulation's conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.component import ComponentSpec, QueueComponent

rates = st.floats(min_value=1.0, max_value=500.0)
arrivals_lists = st.lists(
    st.floats(min_value=0.0, max_value=300.0), min_size=1, max_size=60
)


class TestSingleComponentConservation:
    @given(capacity=rates, buffer_limit=rates, arrivals=arrivals_lists)
    @settings(max_examples=60, deadline=None)
    def test_mass_conserved(self, capacity, buffer_limit, arrivals):
        """accepted arrivals == processed + still queued, exactly."""
        comp = QueueComponent(
            ComponentSpec("c", capacity=capacity, buffer_limit=buffer_limit)
        )
        accepted_total = 0.0
        processed_total = 0.0
        for amount in arrivals:
            comp.begin_tick()
            accepted_total += comp.enqueue(amount)
            processed_total += comp.process()
        assert accepted_total == pytest.approx(
            processed_total + comp.queue, rel=1e-9, abs=1e-6
        )

    @given(capacity=rates, buffer_limit=rates, arrivals=arrivals_lists)
    @settings(max_examples=60, deadline=None)
    def test_rates_and_queues_bounded(self, capacity, buffer_limit, arrivals):
        comp = QueueComponent(
            ComponentSpec("c", capacity=capacity, buffer_limit=buffer_limit)
        )
        for amount in arrivals:
            comp.begin_tick()
            comp.enqueue(amount)
            processed = comp.process()
            assert 0.0 <= processed <= capacity + 1e-9
            assert comp.queue >= -1e-9
            assert comp.backlog >= -1e-9

    @given(
        capacity=rates,
        arrivals=arrivals_lists,
        share=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_share_monotone(self, capacity, arrivals, share):
        """Less CPU never processes more work in total."""
        def run(cpu_share):
            comp = QueueComponent(
                ComponentSpec("c", capacity=capacity, buffer_limit=1e9)
            )
            total = 0.0
            for amount in arrivals:
                comp.begin_tick()
                comp.enqueue(amount)
                total += comp.process(cpu_share=cpu_share)
            return total

        assert run(share) <= run(1.0) + 1e-6


class TestPipelineConservation:
    @given(arrivals=arrivals_lists)
    @settings(max_examples=40, deadline=None)
    def test_two_stage_mass_conserved(self, arrivals):
        up = QueueComponent(
            ComponentSpec("up", capacity=80.0, buffer_limit=1e9)
        )
        down = QueueComponent(
            ComponentSpec("down", capacity=60.0, buffer_limit=1e9)
        )
        up.connect(down)
        accepted = 0.0
        down_processed = 0.0
        for amount in arrivals:
            up.begin_tick()
            down.begin_tick()
            accepted += up.enqueue(amount)
            down_processed += down.process()
            up.process()
        assert accepted == pytest.approx(
            down_processed + up.queue + down.queue, rel=1e-9, abs=1e-6
        )

    @given(arrivals=arrivals_lists, buffer_limit=st.floats(5.0, 60.0))
    @settings(max_examples=40, deadline=None)
    def test_backpressure_never_loses_work(self, arrivals, buffer_limit):
        """A congested downstream stalls the upstream; nothing vanishes."""
        up = QueueComponent(
            ComponentSpec("up", capacity=100.0, buffer_limit=1e9)
        )
        down = QueueComponent(
            ComponentSpec("down", capacity=5.0, buffer_limit=buffer_limit)
        )
        up.connect(down)
        accepted = 0.0
        down_processed = 0.0
        for amount in arrivals:
            up.begin_tick()
            down.begin_tick()
            accepted += up.enqueue(amount)
            down_processed += down.process()
            up.process()
            # Back-pressure invariant: the downstream backlog never
            # exceeds its configured congestion budget by more than one
            # tick's worth of delivery.
            assert down.backlog <= buffer_limit + up.spec.capacity + 1e-6
        assert accepted == pytest.approx(
            down_processed + up.queue + down.queue, rel=1e-9, abs=1e-6
        )
