"""Property-based tests for the integrated pinpointing algorithm."""

import networkx as nx
from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.cusum import ChangePoint
from repro.core.pinpoint import pinpoint_faulty_components
from repro.core.propagation import ComponentReport, build_chain
from repro.core.selection import AbnormalChange

COMPONENTS = ["web", "app1", "app2", "db"]

CONFIG = FChainConfig()


def _change(onset, direction):
    point = ChangePoint(onset, onset, 1.0, 10.0, direction)
    return AbnormalChange(Metric.CPU_USAGE, point, onset, 5.0, 1.0, direction)


reports_strategy = st.lists(
    st.tuples(
        st.sampled_from(COMPONENTS),
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=0, max_value=300),
                st.sampled_from([-1, 1]),
            ),
        ),
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda item: item[0],
).map(
    lambda items: [
        ComponentReport(
            name, [] if payload is None else [_change(*payload)]
        )
        for name, payload in items
    ]
)


def rubis_graph():
    return nx.DiGraph(
        [("web", "app1"), ("web", "app2"), ("app1", "db"), ("app2", "db")]
    )


class TestPinpointInvariants:
    @given(reports=reports_strategy)
    def test_faulty_subset_of_abnormal(self, reports):
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        abnormal = {r.component for r in reports if r.is_abnormal}
        assert result.faulty <= abnormal

    @given(reports=reports_strategy)
    def test_chain_source_faulty_unless_external(self, reports):
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        if result.chain.links and not result.external_factor:
            assert result.chain.components[0] in result.faulty

    @given(reports=reports_strategy)
    def test_external_factor_means_empty(self, reports):
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        if result.external_factor:
            assert result.faulty == frozenset()

    @given(reports=reports_strategy)
    def test_dependency_filter_only_adds_to_core(self, reports):
        """The chain-source + concurrency core is graph-independent; the
        dependency filter can only *add* independently faulty components
        on top of it."""
        core = pinpoint_faulty_components(reports, CONFIG, None)
        with_graph = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        if not core.external_factor and not with_graph.external_factor:
            assert core.faulty <= with_graph.faulty

    @given(reports=reports_strategy)
    def test_complete_graph_equals_no_graph(self, reports):
        """With every pair connected, every propagation is explainable, so
        the result collapses to the propagation-only core."""
        complete = nx.complete_graph(COMPONENTS, create_using=nx.DiGraph)
        with_complete = pinpoint_faulty_components(reports, CONFIG, complete)
        core = pinpoint_faulty_components(reports, CONFIG, None)
        assert with_complete.faulty == core.faulty

    @given(reports=reports_strategy)
    def test_deterministic(self, reports):
        a = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        b = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert a.faulty == b.faulty
        assert a.external_factor == b.external_factor


class TestChainProperties:
    @given(reports=reports_strategy)
    def test_chain_sorted_and_complete(self, reports):
        chain = build_chain(reports)
        onsets = [onset for _, onset in chain.links]
        assert onsets == sorted(onsets)
        assert set(chain.components) == {
            r.component for r in reports if r.is_abnormal
        }
