"""Property-based proof that ``update_many`` is the scalar path, batched.

The fleet-scale ingest path rests on one claim: feeding a model any
chunking of a sample stream through
:meth:`~repro.core.prediction.MarkovPredictor.update_many` is
*bit-identical* to feeding the samples one at a time through ``step`` —
errors and every piece of internal state. The strategies deliberately
cross the hard boundaries: chunks that straddle the warmup/grid-freeze
point, halflives small enough that several halvings land inside one
chunk, zero headroom (degenerate one-point grids), and values far
outside the frozen grid (edge-bin clamping).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.prediction import MarkovPredictor

values_arrays = arrays(
    dtype=float,
    shape=st.integers(1, 160),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)

model_params = st.fixed_dictionaries(
    {
        "bins": st.integers(2, 12),
        "halflife": st.integers(1, 30),
        "warmup": st.integers(2, 25),
        "headroom": st.sampled_from([0.0, 0.25, 0.75]),
    }
)


def _scalar_reference(params, data):
    """The ground truth: one ``step`` per sample, None mapped to NaN."""
    model = MarkovPredictor(**params)
    errors = np.full(len(data), np.nan)
    for i, value in enumerate(data):
        delta = model.step(float(value))
        if delta is not None:
            errors[i] = delta
    return model, errors


def _state_of(model):
    return {
        "previous_bin": model._previous_bin,
        "updates": model._updates,
        "lo": model._lo,
        "hi": model._hi,
        "warmup_values": list(model._warmup_values),
        "counts": np.array(model._counts, copy=True),
        "row_dots": np.array(model._row_dots, copy=True),
        "row_sums": np.array(model._row_sums, copy=True),
        "marginal_dot": model._marginal_dot,
        "marginal_total": model._marginal_total,
    }


def _assert_same_state(batched, reference):
    actual, expected = _state_of(batched), _state_of(reference)
    for name in ("previous_bin", "updates", "lo", "hi", "warmup_values",
                 "marginal_dot", "marginal_total"):
        assert actual[name] == expected[name], name
    for name in ("counts", "row_dots", "row_sums"):
        np.testing.assert_array_equal(
            actual[name], expected[name], err_msg=name
        )


class TestUpdateManyEquivalence:
    @given(
        params=model_params,
        data=values_arrays,
        cuts=st.lists(st.integers(0, 160), max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_chunking_matches_scalar_loop(self, params, data, cuts):
        """Every chunking — including chunks that straddle warmup and
        halving points — reproduces the scalar feed bit for bit."""
        reference, expected = _scalar_reference(params, data)

        batched = MarkovPredictor(**params)
        bounds = sorted({min(c, len(data)) for c in cuts} | {0, len(data)})
        chunks = [
            batched.update_many(data[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
        ]
        actual = (
            np.concatenate(chunks) if chunks else np.empty(0)
        )

        np.testing.assert_array_equal(actual, expected)
        _assert_same_state(batched, reference)

    @given(params=model_params, data=values_arrays)
    @settings(max_examples=40, deadline=None)
    def test_single_chunk_matches_scalar_loop(self, params, data):
        """The whole stream in one call — the ingest benchmark's shape."""
        reference, expected = _scalar_reference(params, data)
        batched = MarkovPredictor(**params)
        np.testing.assert_array_equal(batched.update_many(data), expected)
        _assert_same_state(batched, reference)

    @given(
        constant=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
        tail=values_arrays,
        halflife=st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_degenerate_grid_matches_scalar_loop(self, constant, tail, halflife):
        """Zero headroom + constant warmup freezes a one-point grid; the
        batch path must clamp through it exactly like the scalar path."""
        params = {"bins": 6, "halflife": halflife, "warmup": 4, "headroom": 0.0}
        data = np.concatenate([np.full(4, constant), tail])
        reference, expected = _scalar_reference(params, data)
        batched = MarkovPredictor(**params)
        np.testing.assert_array_equal(batched.update_many(data), expected)
        _assert_same_state(batched, reference)
