"""Property-based tests for the slave's streaming interface.

The incremental engine's correctness rests on one invariant: the order
in which independent (component, metric) streams are interleaved must
not matter — each stream's model sees exactly its own samples in order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.types import Metric
from repro.core.fchain import FChainSlave

series = arrays(
    dtype=float,
    shape=st.shared(st.integers(5, 120), key="len"),
    elements=st.floats(0, 1e4, allow_nan=False, allow_infinity=False),
)

KEYS = (
    ("a", Metric.CPU_USAGE),
    ("a", Metric.MEMORY_USAGE),
    ("b", Metric.CPU_USAGE),
)


def _streams_of(slave):
    return {
        key: np.array(slave._streams[key].view(), copy=True)
        for key in KEYS
        if key in slave._streams
    }


class TestInterleavingInvariance:
    @given(
        data=st.fixed_dictionaries({key: series for key in KEYS}),
        order=st.permutations(range(len(KEYS))),
    )
    @settings(max_examples=25, deadline=None)
    def test_interleaved_equals_per_stream_replay(self, data, order):
        """Round-robin interleaving across streams (in any stream order)
        produces the same error buffers as replaying each stream alone."""
        reference = FChainSlave()
        for key in KEYS:
            component, metric = key
            reference.observe_many(component, metric, data[key])

        interleaved = FChainSlave()
        length = len(next(iter(data.values())))
        for i in range(length):
            for key_index in order:
                component, metric = KEYS[key_index]
                interleaved.observe(component, metric, data[KEYS[key_index]][i])

        expected = _streams_of(reference)
        actual = _streams_of(interleaved)
        assert expected.keys() == actual.keys()
        for key in expected:
            np.testing.assert_array_equal(
                actual[key], expected[key], err_msg=str(key)
            )

    @given(data=series, split=st.integers(0, 120))
    @settings(max_examples=25, deadline=None)
    def test_observe_many_equals_repeated_observe(self, data, split):
        """Batched feeding is sample-for-sample identical to single
        observes, regardless of how the batch is split."""
        split = min(split, len(data))
        one_by_one = FChainSlave()
        for value in data:
            one_by_one.observe("c", Metric.CPU_USAGE, float(value))
        batched = FChainSlave()
        batched.observe_many("c", Metric.CPU_USAGE, data[:split])
        batched.observe_many("c", Metric.CPU_USAGE, data[split:])
        key = ("c", Metric.CPU_USAGE)
        np.testing.assert_array_equal(
            batched._streams[key].view(), one_by_one._streams[key].view()
        )
        assert batched._consumed[key] == len(data)
