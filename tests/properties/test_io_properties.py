"""Property-based tests for the CSV metric-store round trip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.types import Metric
from repro.monitoring.io import load_store_csv, save_store_csv
from repro.monitoring.store import MetricStore

values = arrays(
    dtype=float,
    shape=st.shared(st.integers(2, 40), key="len"),
    elements=st.floats(0, 1e6, allow_nan=False),
)

stores = st.fixed_dictionaries(
    {
        "a": st.fixed_dictionaries(
            {Metric.CPU_USAGE: values, Metric.MEMORY_USAGE: values}
        ),
        "b": st.fixed_dictionaries({Metric.NETWORK_IN: values}),
    }
).map(lambda data: MetricStore.from_arrays(data, start=5))


class TestCsvRoundTripProperties:
    @given(store=stores)
    @settings(max_examples=25, deadline=None)
    def test_round_trip_exact(self, store, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "m.csv"
        save_store_csv(store, path)
        loaded = load_store_csv(path)
        assert loaded.components == store.components
        assert loaded.start == store.start
        assert loaded.length == store.length
        for component in store.components:
            for metric in store.metrics_for(component):
                np.testing.assert_allclose(
                    loaded.series(component, metric).values,
                    store.series(component, metric).values,
                    rtol=1e-12,
                )
