"""Tests for the RUBiS application model."""

import numpy as np
import pytest

from repro.apps.rubis import APP1, APP2, DB, WEB, RubisApplication
from repro.common.types import Metric
from repro.faults.library import CpuHogFault


@pytest.fixture(scope="module")
def idle_run():
    app = RubisApplication(seed=11, duration=700)
    app.run(600)
    return app


class TestTopology:
    def test_components(self):
        app = RubisApplication(seed=0, duration=60)
        assert set(app.components) == {WEB, APP1, APP2, DB}

    def test_edges(self):
        app = RubisApplication(seed=0, duration=60)
        assert set(app.topology.edges) == {
            (WEB, APP1),
            (WEB, APP2),
            (APP1, DB),
            (APP2, DB),
        }

    def test_two_hosts(self):
        app = RubisApplication(seed=0, duration=60)
        assert len(app.hosts) == 2


class TestNormalOperation:
    def test_no_violation_without_fault(self, idle_run):
        assert idle_run.slo.first_violation is None

    def test_latency_well_under_slo(self, idle_run):
        perf = idle_run.slo.performance_series()
        assert np.median(perf.values[100:]) < 0.06

    def test_all_metrics_recorded(self, idle_run):
        assert idle_run.store.length == 600
        for comp in (WEB, APP1, APP2, DB):
            assert len(idle_run.store.metrics_for(comp)) == 6

    def test_load_balanced_evenly(self, idle_run):
        a = idle_run.store.series(APP1, Metric.NETWORK_IN).values[100:].mean()
        b = idle_run.store.series(APP2, Metric.NETWORK_IN).values[100:].mean()
        assert abs(a - b) / max(a, b) < 0.25

    def test_db_sees_all_traffic(self, idle_run):
        web_in = idle_run.store.series(WEB, Metric.NETWORK_IN).values[100:].mean()
        db_cpu = idle_run.store.series(DB, Metric.CPU_USAGE).values[100:].mean()
        assert web_in > 0
        assert 5 < db_cpu < 80


class TestFaultBehaviour:
    def test_db_cpuhog_causes_violation_and_backpressure(self):
        app = RubisApplication(seed=12, duration=1000)
        app.inject(CpuHogFault(600, DB))
        app.run(900)
        violation = app.slo.first_violation_after(600)
        assert violation is not None
        assert violation >= 600
        # The database saturates...
        db_cpu = app.store.series(DB, Metric.CPU_USAGE)
        assert db_cpu.values[660:760].mean() > 80
        # ...and the app tier's throughput collapses (back-pressure).
        app_out = app.store.series(APP1, Metric.NETWORK_OUT)
        assert app_out.values[700:800].mean() < 0.7 * app_out.values[400:590].mean()

    def test_deterministic_runs(self):
        a = RubisApplication(seed=33, duration=300)
        a.run(200)
        b = RubisApplication(seed=33, duration=300)
        b.run(200)
        sa = a.store.series(WEB, Metric.CPU_USAGE).values
        sb = b.store.series(WEB, Metric.CPU_USAGE).values
        assert (sa == sb).all()

    def test_scale_resource_cpu(self):
        app = RubisApplication(seed=1, duration=60)
        before = app.vms[DB].vcpus
        app.scale_resource(DB, Metric.CPU_USAGE, 2.0)
        assert app.vms[DB].vcpus == pytest.approx(2 * before)

    def test_scale_resource_memory(self):
        app = RubisApplication(seed=1, duration=60)
        before = app.vms[DB].memory_limit_mb
        app.scale_resource(DB, Metric.MEMORY_USAGE, 2.0)
        assert app.vms[DB].memory_limit_mb == pytest.approx(2 * before)

    def test_scale_resource_disk(self):
        app = RubisApplication(seed=1, duration=60)
        before = app.vms[DB].host.disk_bw_kbps
        app.scale_resource(DB, Metric.DISK_READ, 2.0)
        assert app.vms[DB].host.disk_bw_kbps == pytest.approx(2 * before)


class TestPacketRecording:
    def test_packets_recorded_when_enabled(self):
        app = RubisApplication(seed=2, duration=30, record_packets=True)
        app.run(30)
        assert len(app.packet_trace) > 100

    def test_no_trace_by_default(self):
        app = RubisApplication(seed=2, duration=30)
        assert app.packet_trace is None
