"""Tests for the Application base class machinery."""

import copy

import pytest

from repro.apps.base import Application
from repro.apps.rubis import DB, RubisApplication
from repro.common.errors import SimulationError
from repro.common.types import Metric
from repro.sim.component import ComponentSpec


class TinyApp(Application):
    """Two-component pipeline for base-class behaviour tests."""

    def __init__(self, seed=0):
        super().__init__("tiny", seed)
        host = self.new_host("h", cores=2.0)
        self.add_component(ComponentSpec("front", capacity=50.0), host)
        self.add_component(ComponentSpec("back", capacity=50.0), host)
        self.connect("front", "back")
        self.add_entry("front")
        from repro.monitoring.slo import LatencySLO
        from repro.workloads.generator import ClientWorkload
        import numpy as np

        self.workload = ClientWorkload(np.full(600, 20.0), seed=seed)
        self.slo = LatencySLO(0.5, sustain=3)
        self.finalize()

    def _measure_performance(self, t):
        return self.path_sojourn(["front", "back"])


class TestConstruction:
    def test_duplicate_component_rejected(self):
        app = TinyApp()
        with pytest.raises(SimulationError):
            app.add_component(ComponentSpec("front", capacity=1.0), app.hosts[0])

    def test_cycle_rejected(self):
        app = TinyApp()
        app.connect("back", "front")
        with pytest.raises(SimulationError):
            app.finalize()

    def test_component_names_topological(self):
        app = TinyApp()
        assert app.component_names() == ["front", "back"]


class TestTick:
    def test_run_advances_and_records(self):
        app = TinyApp()
        app.run(50)
        assert app.time == 50
        assert app.store.length == 50

    def test_work_flows_through_pipeline(self):
        app = TinyApp()
        app.run(30)
        back_cpu = app.store.series("back", Metric.CPU_USAGE)
        assert back_cpu.values[5:].mean() > 10

    def test_fault_hooks_called(self):
        app = TinyApp()
        calls = []

        class Probe:
            ground_truth = frozenset()

            def on_tick(self, a, t):
                calls.append(t)

        app.inject(Probe())
        app.run(3)
        assert calls == [0, 1, 2]


class TestForkability:
    def test_deepcopy_diverges(self):
        app = TinyApp(seed=5)
        app.run(20)
        fork = copy.deepcopy(app)
        fork.run(20)
        assert app.store.length == 20
        assert fork.store.length == 40

    def test_rubis_deepcopy_preserves_determinism(self):
        a = RubisApplication(seed=9, duration=200)
        a.run(50)
        b = copy.deepcopy(a)
        a.run(50)
        b.run(50)
        sa = a.store.series(DB, Metric.CPU_USAGE).values
        sb = b.store.series(DB, Metric.CPU_USAGE).values
        assert (sa == sb).all()
