"""Tests for the generated microservice-mesh application."""

import pytest

from repro.apps.mesh import MeshApplication
from repro.common.errors import SimulationError


@pytest.fixture(scope="module")
def mesh():
    return MeshApplication(seed=7, services=30, duration=600)


class TestMeshStructure:
    def test_same_seed_same_mesh(self, mesh):
        twin = MeshApplication(seed=7, services=30, duration=600)
        assert [list(layer) for layer in twin.layers] == [
            list(layer) for layer in mesh.layers
        ]
        for name, component in mesh.components.items():
            assert twin.components[name].spec.capacity == pytest.approx(
                component.spec.capacity
            )
            assert sorted(
                d.name for d, _ in twin.components[name].routing()
            ) == sorted(d.name for d, _ in component.routing())

    def test_fan_out_fan_in_profile(self, mesh):
        widths = [len(layer) for layer in mesh.layers]
        assert widths[0] == 1
        assert max(widths) > 2
        assert sum(widths) == 30

    def test_fan_in_at_least_two(self, mesh):
        """No service hangs off a single upstream caller when the
        upstream layer has two to give."""
        callers = {name: 0 for name in mesh.components}
        for name, component in mesh.components.items():
            for downstream, _ in component.routing():
                callers[downstream.name] += 1
        for upstream, downstream in zip(mesh.layers, mesh.layers[1:]):
            want = min(2, len(upstream))
            for name in downstream:
                assert callers[name] >= want

    def test_default_fault_target_in_layer_one(self, mesh):
        assert mesh.layer_of(mesh.default_fault_target()) == 1

    def test_services_bounds_enforced(self):
        with pytest.raises(SimulationError):
            MeshApplication(seed=0, services=1)


class TestMeshFlow:
    def test_gateway_receives_base_rate(self, mesh):
        assert mesh.nominal_arrival_rate(mesh.gateway) == pytest.approx(
            mesh.base_rate
        )

    def test_every_service_reachable(self, mesh):
        for name in mesh.components:
            assert mesh.nominal_arrival_rate(name) > 0.0

    def test_unknown_service_rejected(self, mesh):
        with pytest.raises(SimulationError):
            mesh.nominal_arrival_rate("nope")

    def test_bottleneck_cap_scales_with_fraction(self, mesh):
        target = mesh.default_fault_target()
        cap = mesh.bottleneck_cap(target)
        assert 0.0 < cap < 1.0
        assert mesh.bottleneck_cap(target, fraction=0.45) == pytest.approx(
            cap / 2
        )


class TestMeshRuntime:
    def test_edge_traffic_reports_wired_edges(self):
        app = MeshApplication(seed=3, services=20, duration=600)
        for t in range(30):
            app.tick(t)
            app.time += 1
        edges = app.edge_traffic()
        assert edges
        wired = {
            (name, downstream.name)
            for name, component in app.components.items()
            for downstream, _ in component.routing()
        }
        assert set(edges) <= wired
        assert all(count >= 0.0 for count in edges.values())

    def test_performance_bounded_by_timeouts(self):
        app = MeshApplication(seed=3, services=20, duration=600)
        app.run(50)
        budget = app.timeout_s * len(app.layers) + 0.001 * len(app.layers)
        assert all(0.0 < s <= budget for s in app.slo.samples)
