"""Tests for the Hadoop application model."""

import numpy as np
import pytest

from repro.apps.hadoop import MAPS, REDUCES, HadoopApplication
from repro.common.types import Metric
from repro.faults.library import DiskHogFault, InfiniteLoopFault


class TestTopology:
    def test_three_maps_six_reduces(self):
        app = HadoopApplication(seed=0)
        assert set(app.components) == set(MAPS) | set(REDUCES)

    def test_full_shuffle_edges(self):
        app = HadoopApplication(seed=0)
        assert app.topology.number_of_edges() == 18

    def test_five_hosts_two_vms_each(self):
        app = HadoopApplication(seed=0)
        assert len(app.hosts) == 5
        assert max(len(h.vms) for h in app.hosts) <= 2


class TestNormalOperation:
    @pytest.fixture(scope="class")
    def run(self, hadoop_idle_run):
        return hadoop_idle_run

    def test_progress_monotone(self, run):
        perf = run.slo.performance_series().values
        assert (np.diff(perf) >= -1e-12).all()

    def test_no_violation(self, run):
        assert run.slo.first_violation is None

    def test_progress_rate_plausible(self, run):
        perf = run.slo.performance_series().values
        # 90 records/s over 240k items, map+reduce halves.
        expected = 0.5 * (2 * 90.0 * 800) / 240_000.0
        assert perf[850] == pytest.approx(expected, rel=0.3)

    def test_spill_traffic_is_bursty(self, run):
        red_in = run.store.series("red1", Metric.NETWORK_IN).values[200:800]
        assert np.percentile(red_in, 95) > 4 * max(np.median(red_in), 1.0)

    def test_map_disk_read_active(self, run):
        dr = run.store.series("map1", Metric.DISK_READ).values[200:800]
        assert dr.mean() > 1000


class TestFaults:
    def test_infinite_loop_stalls_progress(self):
        app = HadoopApplication(seed=7)
        for m in MAPS:
            app.inject(InfiniteLoopFault(400, m))
        app.run(600)
        violation = app.slo.first_violation_after(400)
        assert violation is not None
        assert violation <= 480
        cpu = app.store.series("map1", Metric.CPU_USAGE)
        assert cpu.values[420:480].mean() > 85

    def test_diskhog_manifests_slowly(self):
        app = HadoopApplication(seed=8)
        app.inject(DiskHogFault(300, list(MAPS)))
        app.run(900)
        violation = app.slo.first_violation_after(300)
        assert violation is not None
        # The paper's slow fault: hundreds of seconds to violation.
        assert violation - 300 > 150
        dr = app.store.series("map1", Metric.DISK_READ)
        assert dr.values[violation : violation + 20].mean() < 0.3 * dr.values[
            200:290
        ].mean()
