"""Tests for Hadoop job completion semantics."""

import numpy as np
import pytest

from repro.apps.hadoop import MAPS, HadoopApplication


class TestJobCompletion:
    @pytest.fixture(scope="class")
    def finished(self):
        # A tiny job: 9000 records at 90 records/s -> maps drain in ~100 s,
        # reduces shortly after.
        app = HadoopApplication(seed=17, total_input_items=9_000.0)
        app.run(400)
        return app

    def test_progress_reaches_one(self, finished):
        assert finished.slo.samples[-1] == pytest.approx(1.0, abs=1e-6)

    def test_no_violation_after_finish(self, finished):
        """A finished job stalling is not an SLO violation."""
        assert finished.slo.first_violation is None

    def test_input_exhausted(self, finished):
        assert all(
            finished.remaining_input[m] == pytest.approx(0.0) for m in MAPS
        )

    def test_components_idle_after_finish(self, finished):
        for name, comp in finished.components.items():
            assert comp.queue == pytest.approx(0.0, abs=1.0), name
