"""Tests for the System S application model."""

import numpy as np

from repro.apps.systems import EDGES, PES, SystemSApplication
from repro.common.types import Metric
from repro.faults.library import BottleneckFault, MemLeakFault


class TestTopology:
    def test_seven_pes(self):
        app = SystemSApplication(seed=0, duration=60)
        assert set(app.components) == set(PES)

    def test_figure2_relations(self):
        """PE3 feeds PE6 (downstream propagation) and PE2 feeds PE6
        (back-pressure to an upstream neighbour), per paper Fig. 2."""
        assert ("PE3", "PE6") in EDGES
        assert ("PE2", "PE6") in EDGES

    def test_dag(self):
        import networkx as nx

        app = SystemSApplication(seed=0, duration=60)
        assert nx.is_directed_acyclic_graph(app.topology)

    def test_streaming_flag(self):
        assert SystemSApplication.streaming is True


class TestNormalOperation:
    def test_no_violation_without_fault(self):
        app = SystemSApplication(seed=21, duration=700)
        app.run(600)
        assert app.slo.first_violation is None

    def test_latency_under_threshold(self):
        app = SystemSApplication(seed=22, duration=400)
        app.run(300)
        perf = app.slo.performance_series()
        assert np.median(perf.values[60:]) < app.SLO_THRESHOLD


class TestFaultPropagation:
    def test_memleak_at_pe3_propagates(self):
        """Fig. 2 scenario: a leak at PE3 eventually disturbs PE6."""
        app = SystemSApplication(seed=23, duration=1200)
        app.inject(MemLeakFault(600, "PE3"))
        app.run(1100)
        violation = app.slo.first_violation_after(600)
        assert violation is not None
        mem = app.store.series("PE3", Metric.MEMORY_USAGE)
        assert mem.values[700] > mem.values[580] + 300
        pe6_in = app.store.series("PE6", Metric.NETWORK_IN)
        before = pe6_in.values[400:590].mean()
        after = pe6_in.values[violation - 5 : violation + 20].mean()
        assert after < 0.8 * before

    def test_bottleneck_backpressure_upstream(self):
        """A capped PE6 stalls its upstream feeder PE2 within seconds."""
        app = SystemSApplication(seed=24, duration=1000)
        app.inject(BottleneckFault(600, "PE6"))
        app.run(800)
        assert app.slo.first_violation_after(600) is not None
        pe2_out = app.store.series("PE2", Metric.NETWORK_OUT)
        before = pe2_out.values[400:590].mean()
        after = pe2_out.values[615:660].mean()
        assert after < 0.8 * before
