"""Tests for change-magnitude outlier selection."""

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.core.cusum import ChangePoint
from repro.core.outliers import outlier_change_points


def cp(time, magnitude, direction=1):
    return ChangePoint(
        time=time, index=time, confidence=1.0, magnitude=magnitude,
        direction=direction,
    )


def flat_series(n=100, level=50.0):
    return TimeSeries(np.full(n, level))


class TestOutlierSelection:
    def test_large_magnitude_selected(self):
        reference = [1.0] * 30
        selected = outlier_change_points(
            [cp(10, 20.0)], reference, flat_series()
        )
        assert len(selected) == 1

    def test_ordinary_magnitude_rejected(self):
        reference = list(np.linspace(5, 15, 30))
        selected = outlier_change_points(
            [cp(10, 10.0)], reference, flat_series()
        )
        assert selected == []

    def test_tiny_relative_shift_rejected(self):
        # Big z-score but negligible against the series level.
        reference = [0.01] * 30
        selected = outlier_change_points(
            [cp(10, 0.5)], reference, flat_series(level=1000.0)
        )
        assert selected == []

    def test_empty_candidates(self):
        assert outlier_change_points([], [1.0], flat_series()) == []

    def test_no_reference_uses_floor_only(self):
        selected = outlier_change_points(
            [cp(10, 30.0), cp(20, 30.0)], [], flat_series()
        )
        # Identical magnitudes: zero variance, floor decides (30 > 15%).
        assert len(selected) == 2

    def test_sorted_by_time(self):
        reference = [1.0] * 30
        selected = outlier_change_points(
            [cp(30, 25.0), cp(10, 30.0)], reference, flat_series()
        )
        assert [p.time for p in selected] == [10, 30]

    def test_zscore_parameter(self):
        reference = list(np.linspace(1, 3, 50))
        candidate = cp(10, 8.0)
        strict = outlier_change_points(
            [candidate], reference, flat_series(), zscore=20.0
        )
        lax = outlier_change_points(
            [candidate], reference, flat_series(), zscore=1.0
        )
        assert strict == []
        assert len(lax) == 1
