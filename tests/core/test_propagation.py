"""Tests for propagation chain construction."""

import pytest

from repro.common.types import Metric
from repro.core.cusum import ChangePoint
from repro.core.propagation import ComponentReport, build_chain
from repro.core.selection import AbnormalChange


def change(metric, onset, direction=1):
    point = ChangePoint(onset, onset, 1.0, 10.0, direction)
    return AbnormalChange(
        metric=metric,
        change_point=point,
        onset_time=onset,
        prediction_error=5.0,
        expected_error=1.0,
        direction=direction,
    )


def report(name, *onsets, direction=1):
    return ComponentReport(
        component=name,
        abnormal_changes=[
            change(Metric.CPU_USAGE, onset, direction) for onset in onsets
        ],
    )


class TestComponentReport:
    def test_onset_is_earliest(self):
        r = report("c", 30, 10, 20)
        assert r.onset_time == 10

    def test_empty_report_normal(self):
        r = ComponentReport("c")
        assert not r.is_abnormal
        assert r.onset_time is None
        assert r.trend is None

    def test_trend_from_earliest_change(self):
        r = ComponentReport(
            "c",
            abnormal_changes=[
                change(Metric.CPU_USAGE, 20, direction=1),
                change(Metric.MEMORY_USAGE, 10, direction=-1),
            ],
        )
        assert r.trend == -1

    def test_implicated_metrics_ordered_deduped(self):
        r = ComponentReport(
            "c",
            abnormal_changes=[
                change(Metric.CPU_USAGE, 20),
                change(Metric.MEMORY_USAGE, 10),
                change(Metric.CPU_USAGE, 30),
            ],
        )
        assert r.implicated_metrics == [Metric.MEMORY_USAGE, Metric.CPU_USAGE]


class TestChain:
    def test_sorted_by_onset(self):
        chain = build_chain(
            [report("b", 20), report("a", 10), report("c", 30)]
        )
        assert chain.components == ["a", "b", "c"]

    def test_fig2_example(self):
        """PE3 (t1) -> PE6 (t2) -> PE2 (t3): PE3 leads the chain."""
        chain = build_chain(
            [report("PE6", 200), report("PE2", 210), report("PE3", 190)]
        )
        assert chain.components[0] == "PE3"
        assert chain.edges() == [("PE3", "PE6"), ("PE6", "PE2")]

    def test_normal_components_excluded(self):
        chain = build_chain([report("a", 10), ComponentReport("idle")])
        assert chain.components == ["a"]

    def test_ties_ordered_by_name(self):
        chain = build_chain([report("z", 10), report("a", 10)])
        assert chain.components == ["a", "z"]

    def test_onset_lookup(self):
        chain = build_chain([report("a", 10)])
        assert chain.onset_of("a") == 10
        with pytest.raises(KeyError):
            chain.onset_of("missing")

    def test_empty(self):
        chain = build_chain([])
        assert chain.components == []
        assert chain.edges() == []
