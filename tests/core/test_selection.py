"""Tests for abnormal change point selection and onset identification."""

import numpy as np
import pytest

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.cusum import ChangePoint
from repro.core.selection import (
    actual_prediction_error,
    censored_onset,
    change_departs_from_routine,
    history_error_reference,
    reference_change_magnitudes,
    rollback_onset,
    select_abnormal_changes,
    shift_persists,
)


def cp(time, magnitude=10.0, direction=1, index=None):
    return ChangePoint(
        time=time,
        index=index if index is not None else time,
        confidence=1.0,
        magnitude=magnitude,
        direction=direction,
    )


class TestReferenceMagnitudes:
    def test_flat_history_small_reference(self):
        history = TimeSeries(np.full(200, 10.0))
        reference = reference_change_magnitudes(history)
        assert reference.max() == pytest.approx(0.0)

    def test_fluctuating_history_larger(self):
        rng = spawn_rng("ref")
        noisy = TimeSeries(10 + rng.normal(0, 3, 200))
        flat = TimeSeries(np.full(200, 10.0))
        assert reference_change_magnitudes(noisy).mean() > (
            reference_change_magnitudes(flat).mean()
        )

    def test_short_history_empty(self):
        assert len(reference_change_magnitudes(TimeSeries(np.zeros(5)))) == 0


class TestActualError:
    def test_forward_window_catches_spike(self):
        errors = np.array([1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 1.0])
        series = TimeSeries(np.zeros(7))
        assert actual_prediction_error(errors, series, 2) == 50.0

    def test_direction_filtering(self):
        errors = np.array([0.0, -40.0, 30.0, 0.0, 0.0])
        series = TimeSeries(np.zeros(5))
        assert actual_prediction_error(errors, series, 0, direction=-1) == 40.0
        assert actual_prediction_error(errors, series, 0, direction=1) == 30.0

    def test_direction_fallback_when_none_match(self):
        errors = np.array([0.0, 25.0, 0.0])
        series = TimeSeries(np.zeros(3))
        assert actual_prediction_error(errors, series, 0, direction=-1) == 25.0

    def test_nan_ignored(self):
        errors = np.array([np.nan, np.nan, 5.0])
        series = TimeSeries(np.zeros(3))
        assert actual_prediction_error(errors, series, 0) == 5.0


class TestHistoryReference:
    def test_directional_split(self):
        errors = np.concatenate([np.full(50, 100.0), np.full(50, -1.0)])
        up = history_error_reference(errors, 1, 99.0)
        down = history_error_reference(errors, -1, 99.0)
        assert up == pytest.approx(100.0)
        assert down == pytest.approx(1.0)

    def test_too_few_samples_zero(self):
        assert history_error_reference(np.array([1.0] * 5), 1, 99.0) == 0.0


class TestShiftPersists:
    def test_lasting_step_persists(self):
        values = np.concatenate([np.full(40, 10.0), np.full(40, 30.0)])
        assert shift_persists(values, 40, 20.0)

    def test_transient_spike_rejected(self):
        values = np.full(80, 10.0)
        values[40:43] = 50.0
        assert not shift_persists(values, 40, 25.0)

    def test_decaying_burst_rejected(self):
        values = np.full(80, 10.0)
        values[40:52] = 10 + 30 * np.exp(-np.arange(12) / 3.0)
        assert not shift_persists(values, 40, 20.0)

    def test_edge_points_accepted(self):
        values = np.full(50, 10.0)
        assert shift_persists(values, 47, 99.0)


class TestRollback:
    def test_single_point_no_rollback(self):
        values = np.concatenate([np.full(50, 10.0), np.full(50, 30.0)])
        smoothed = TimeSeries(values)
        point = cp(50)
        assert rollback_onset(smoothed, [point], point) == 50

    def test_rolls_back_along_ramp(self):
        # A long ramp detected as several change points with equal slope.
        ramp = np.concatenate([np.full(40, 10.0), 10 + np.arange(60) * 2.0])
        smoothed = TimeSeries(ramp)
        points = [cp(48, 5.0), cp(58, 10.0), cp(68, 10.0)]
        onset = rollback_onset(smoothed, points, points[-1])
        assert onset <= 58

    def test_stops_at_direction_flip(self):
        values = np.concatenate(
            [np.full(30, 20.0), np.full(30, 5.0), np.full(40, 50.0)]
        )
        smoothed = TimeSeries(values)
        points = [cp(30, 15.0, direction=-1), cp(60, 45.0, direction=1)]
        assert rollback_onset(smoothed, points, points[1]) == 60

    def test_stops_at_large_gap(self):
        values = np.arange(200.0)
        smoothed = TimeSeries(values)
        points = [cp(50, 5.0), cp(120, 5.0)]
        assert rollback_onset(smoothed, points, points[1], max_step_gap=12) == 120

    def test_unknown_point_returned_as_is(self):
        smoothed = TimeSeries(np.zeros(100))
        assert rollback_onset(smoothed, [], cp(40)) == 40


class TestCensoredOnset:
    def test_trending_head_censors(self):
        values = TimeSeries(np.arange(120.0) * 5.0, start=1000)
        assert censored_onset(values, 1050, 1, 100.0) == 1000

    def test_flat_head_not_censored(self):
        values = np.concatenate([np.full(60, 10.0), np.arange(60) * 5.0])
        series = TimeSeries(values, start=1000)
        assert censored_onset(series, 1080, 1, 100.0) == 1080

    def test_wrong_direction_not_censored(self):
        values = TimeSeries(np.arange(120.0) * 5.0, start=1000)
        assert censored_onset(values, 1050, -1, 100.0) == 1050

    def test_noisy_insignificant_head_not_censored(self):
        rng = spawn_rng("head")
        values = TimeSeries(10 + rng.normal(0, 5, 120), start=0)
        assert censored_onset(values, 50, 1, 3.0) == 50


class TestChangeDepartsFromRoutine:
    def _history(self):
        return TimeSeries(np.full(200, 40.0))

    def test_sustained_shift_departs(self):
        values = np.concatenate([np.full(30, 40.0), np.full(30, 70.0)])
        assert change_departs_from_routine(
            self._history(), values, 30, 1, 30.0
        )

    def test_transient_spike_vetoed(self):
        # The spike's rise is a detectable change, but 10 ticks later the
        # series is back at the routine level: no fault operates there.
        values = np.full(60, 40.0)
        values[30:33] = 85.0
        assert not change_departs_from_routine(
            self._history(), values, 30, 1, 45.0
        )

    def test_short_history_accepted(self):
        values = np.concatenate([np.full(30, 40.0), np.full(30, 40.0)])
        assert change_departs_from_routine(
            TimeSeries(np.full(10, 40.0)), values, 30, 1, 30.0
        )

    def test_change_at_window_edge_accepted(self):
        # Too few post-change samples to measure a landing level: the
        # veto must not reject a fresh fault at the window edge.
        values = np.concatenate([np.full(58, 40.0), np.full(2, 80.0)])
        assert change_departs_from_routine(
            self._history(), values, 58, 1, 40.0
        )

    def test_downward_shift_measured_in_direction(self):
        values = np.concatenate([np.full(30, 40.0), np.full(30, 10.0)])
        assert change_departs_from_routine(
            self._history(), values, 30, -1, 30.0
        )
        # A downward transient that recovers is vetoed the same way.
        recovering = np.full(60, 40.0)
        recovering[30:33] = 5.0
        assert not change_departs_from_routine(
            self._history(), recovering, 30, -1, 35.0
        )


class TestSelectAbnormalChanges:
    def _history(self, rng, n=600):
        return 50 + rng.normal(0, 1.5, n)

    def test_fault_step_selected(self):
        rng = spawn_rng("sel1")
        history = self._history(rng)
        window = np.concatenate(
            [50 + rng.normal(0, 1.5, 70), 110 + rng.normal(0, 1.5, 38)]
        )
        changes = select_abnormal_changes(
            TimeSeries(window, start=600),
            TimeSeries(history, start=0),
            Metric.CPU_USAGE,
            FChainConfig(),
        )
        assert changes
        assert abs(changes[0].onset_time - 670) <= 4

    def test_normal_window_nothing_selected(self):
        rng = spawn_rng("sel2")
        history = self._history(rng)
        window = 50 + rng.normal(0, 1.5, 108)
        changes = select_abnormal_changes(
            TimeSeries(window, start=600),
            TimeSeries(history, start=0),
            Metric.CPU_USAGE,
            FChainConfig(),
        )
        assert changes == []

    def test_recurring_spikes_filtered(self):
        """Spikes the model saw in history do not become abnormal changes."""
        rng = spawn_rng("sel3")
        history = self._history(rng)
        history[::50] += 40  # recurring spikes throughout history
        window = 50 + rng.normal(0, 1.5, 108)
        window[40:42] += 40  # one more spike in the window
        changes = select_abnormal_changes(
            TimeSeries(window, start=600),
            TimeSeries(history, start=0),
            Metric.CPU_USAGE,
            FChainConfig(),
        )
        assert changes == []

    def test_short_window_no_changes(self):
        changes = select_abnormal_changes(
            TimeSeries(np.arange(4.0), start=0),
            TimeSeries(np.zeros(0), start=0),
            Metric.CPU_USAGE,
            FChainConfig(),
        )
        assert changes == []

    def test_records_errors_and_direction(self):
        rng = spawn_rng("sel4")
        history = self._history(rng)
        window = np.concatenate(
            [50 + rng.normal(0, 1.5, 70), 5 + rng.normal(0, 0.5, 38)]
        )
        changes = select_abnormal_changes(
            TimeSeries(window, start=600),
            TimeSeries(history, start=0),
            Metric.MEMORY_USAGE,
            FChainConfig(),
        )
        assert changes
        change = changes[0]
        assert change.direction == -1
        assert change.prediction_error > change.expected_error
        assert change.metric is Metric.MEMORY_USAGE
