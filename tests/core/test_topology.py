"""Tests for the online learned topology and topology-guided scoping."""

import networkx as nx
import pytest

from repro.apps.mesh import MeshApplication
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.core.topology import (
    OnlineTopology,
    neighborhood_complete,
    rank_candidates,
)
from repro.faults.library import BottleneckFault


class TestOnlineTopology:
    def test_traffic_evidence_raises_confidence(self):
        topo = OnlineTopology(halflife=10.0)
        for t in range(100):
            topo.observe_traffic(t, {("a", "b"): 5.0})
        assert topo.confidence("a", "b") > 0.95
        assert topo.confidence("b", "a") == 0.0

    def test_silence_halves_confidence_per_halflife(self):
        topo = OnlineTopology(halflife=20.0)
        for t in range(200):
            topo.observe_traffic(t, {("a", "b"): 5.0})
        before = topo.confidence("a", "b")
        topo.observe_traffic(199 + 20, {("x", "y"): 1.0})
        assert topo.confidence("a", "b") == pytest.approx(before / 2, rel=0.05)

    def test_inactive_edge_not_created(self):
        topo = OnlineTopology(activity_threshold=1.0)
        topo.observe_traffic(0, {("a", "b"): 0.5})
        assert len(topo) == 0

    def test_comovement_corroborates_known_edges_only(self):
        topo = OnlineTopology(halflife=10.0, comovement_window=8)
        topo.observe_traffic(0, {("a", "b"): 5.0})
        start = topo.confidence("a", "b")
        # Perfectly co-moving signals on a, b and an unrelated pair c, d.
        for t in range(1, 40):
            topo.observe_comovement(
                t, {"a": float(t % 7), "b": float(t % 7),
                    "c": float(t % 5), "d": float(t % 5)}
            )
        assert topo.confidence("a", "b") > start
        # Correlation alone cannot orient an edge: c -> d never appears.
        assert topo.confidence("c", "d") == 0.0

    def test_seed_then_decay(self):
        seed = nx.DiGraph()
        seed.add_edge("a", "b", weight=0.8)
        topo = OnlineTopology(halflife=5.0, seed_graph=seed)
        assert topo.confidence("a", "b") == pytest.approx(0.8)
        topo.observe_traffic(50, {("x", "y"): 1.0})
        assert topo.confidence("a", "b") < 0.01
        assert not topo.graph().has_edge("a", "b")

    def test_save_load_round_trip(self, tmp_path):
        topo = OnlineTopology(halflife=50.0)
        for t in range(100):
            topo.observe_traffic(
                t, {("a", "b"): 5.0, ("b", "c"): 3.0}
            )
        path = tmp_path / "topology.json"
        topo.save(path)
        restored = OnlineTopology.load(path, halflife=50.0)
        for edge in (("a", "b"), ("b", "c")):
            assert restored.confidence(*edge) == pytest.approx(
                topo.confidence(*edge), rel=1e-6
            )

    def test_graph_cutoff_drops_decayed_edges(self):
        topo = OnlineTopology(halflife=5.0, min_confidence=0.05)
        topo.observe_traffic(0, {("a", "b"): 5.0})
        topo.observe_traffic(100, {("x", "y"): 5.0})
        graph = topo.graph()
        assert not graph.has_edge("a", "b")
        # The node itself is remembered even when its edges decayed away.
        assert "a" in graph


class TestRankCandidates:
    def graph(self):
        g = nx.DiGraph()
        g.add_edge("gw", "a", weight=0.9)
        g.add_edge("gw", "b", weight=0.3)
        g.add_edge("a", "deep", weight=0.9)
        return g

    def test_origin_first_distance_then_confidence(self):
        ranked = rank_candidates(
            self.graph(), "gw", ["deep", "b", "a", "gw"]
        )
        assert ranked[0] == "gw"
        # Both a and b sit one hop out; a's hop carries more confidence.
        assert ranked[1:3] == ["a", "b"]
        assert ranked[3] == "deep"

    def test_unknown_components_rank_last(self):
        ranked = rank_candidates(
            self.graph(), "gw", ["island2", "a", "island1"]
        )
        assert ranked == ["gw", "a", "island1", "island2"]

    def test_unknown_origin_still_leads(self):
        ranked = rank_candidates(self.graph(), "ghost", ["a", "b"])
        assert ranked[0] == "ghost"

    def test_backpressure_counts_reverse_edges(self):
        # deep -> a -> gw only exists in the forward direction, but
        # propagation travels against request flow too.
        ranked = rank_candidates(self.graph(), "deep", ["gw", "a", "b"])
        assert ranked == ["deep", "a", "gw", "b"]


class TestNeighborhoodComplete:
    def test_interior_abnormal_is_complete(self):
        g = nx.DiGraph([("gw", "a"), ("a", "deep")])
        assert neighborhood_complete(g, ["a"], ["gw", "a", "deep"])

    def test_frontier_abnormal_is_incomplete(self):
        g = nx.DiGraph([("gw", "a"), ("a", "deep")])
        assert not neighborhood_complete(g, ["a"], ["gw", "a"])

    def test_unknown_abnormal_is_tolerated(self):
        g = nx.DiGraph([("gw", "a")])
        assert neighborhood_complete(g, ["island"], ["gw"])


@pytest.fixture(scope="module")
def mesh_run():
    """A 20-service mesh with a bottleneck on the canonical target,
    plus the topology learned live from its edge traffic."""
    app = MeshApplication(seed=7, services=20, duration=1200)
    target = app.default_fault_target()
    app.inject(
        BottleneckFault(600, target, cap=app.bottleneck_cap(target))
    )
    topology = OnlineTopology(halflife=300.0)
    for t in range(700):
        app.tick(t)
        app.time += 1
        topology.observe_traffic(t, app.edge_traffic())
    violation = app.slo.first_violation_after(600)
    assert violation is not None
    return app, topology, target, violation


class TestTopologyGuidedDiagnosis:
    def test_scoped_matches_full_fanout_on_strict_subset(self, mesh_run):
        app, topology, target, violation = mesh_run
        full = FChain(FChainConfig(), seed=7).localize(
            app.store, violation_time=violation
        )
        scoped = FChain(
            FChainConfig(topology_mode="neighborhood", topology_top_k=8),
            seed=7,
            topology=topology,
        ).localize(app.store, violation_time=violation, origin=app.gateway)
        assert target in full.faulty
        assert scoped.faulty == full.faulty
        assert not scoped.escalated
        assert len(scoped.analyzed) == 8
        assert scoped.analyzed < frozenset(app.store.components)

    def test_culprit_outside_top_k_widens_never_misses(self, mesh_run):
        app, topology, target, violation = mesh_run
        # Rank from the far end of the mesh with a tiny K, so the true
        # culprit falls outside the analysed neighborhood.
        far_origin = app.layers[-1][-1]
        ranked = rank_candidates(
            topology.graph(), far_origin, app.store.components
        )
        assert target not in ranked[:4]
        scoped = FChain(
            FChainConfig(topology_mode="neighborhood", topology_top_k=4),
            seed=7,
            topology=topology,
        ).localize(app.store, violation_time=violation, origin=far_origin)
        assert scoped.escalated
        assert target in scoped.faulty
        assert scoped.analyzed == frozenset(app.store.components)

    def test_full_mode_ignores_origin(self, mesh_run):
        app, topology, target, violation = mesh_run
        with_origin = FChain(
            FChainConfig(), seed=7, topology=topology
        ).localize(app.store, violation_time=violation, origin=app.gateway)
        assert with_origin.analyzed is None
        assert not with_origin.escalated
        assert target in with_origin.faulty
