"""End-to-end telemetry tests for the diagnosis pipeline.

The acceptance bar from the observability work: with full telemetry a
single diagnosis trace covers every pipeline stage, the thread and
process executors produce the *same* stage vocabulary, ``"off"``
produces no trace at all (and identical diagnoses), and finished traces
aggregate into the default registry whose Prometheus export parses.
"""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.eval.bench import synthetic_store
from repro.obs.export import parse_prometheus_text
from repro.obs.registry import default_registry
from repro.obs.trace import (
    PIPELINE_STAGES,
    STAGE_COMPONENT,
    STAGE_DIAGNOSIS,
    STAGE_METRIC,
)

#: Cheap bootstraps — stage coverage does not need tight intervals.
CONFIG = FChainConfig(cusum_bootstraps=40, telemetry="full")


@pytest.fixture(scope="module")
def store():
    return synthetic_store(samples=1200, components=4, metrics=2, seed=7)


@pytest.fixture(autouse=True)
def clean_registry():
    default_registry().reset()
    yield
    default_registry().reset()


def _diagnose(store, config, jobs=2):
    violation = store.end - config.analysis_grace - 1
    with FChain(config, seed=2, jobs=jobs) as fchain:
        return fchain.localize(store, violation_time=violation)


class TestStageCoverage:
    def test_full_trace_covers_every_pipeline_stage(self, store):
        diagnosis = _diagnose(store, CONFIG)
        trace = diagnosis.trace
        assert trace is not None
        assert trace.name == STAGE_DIAGNOSIS
        assert set(PIPELINE_STAGES) <= trace.stage_names()

    def test_thread_and_process_executors_same_stage_set(self, store):
        threaded = _diagnose(store, CONFIG)
        processed = _diagnose(store, replace(CONFIG, executor="process"))
        assert threaded.trace.stage_names() == processed.trace.stage_names()
        assert set(PIPELINE_STAGES) <= threaded.trace.stage_names()
        # Telemetry must not perturb the diagnosis itself.
        assert processed.result.faulty == threaded.result.faulty
        assert processed.result.chain.links == threaded.result.chain.links

    def test_trace_structure_mirrors_the_store(self, store):
        diagnosis = _diagnose(store, CONFIG)
        trace = diagnosis.trace
        components = trace.find_all(STAGE_COMPONENT)
        assert sorted(s.tags["component"] for s in components) == list(
            store.components
        )
        metric_spans = trace.find_all(STAGE_METRIC)
        assert len(metric_spans) == len(store.components) * 2
        assert trace.tags["executor"] == "thread"
        assert trace.counter_total("metrics_analyzed") == len(metric_spans)

    def test_trace_durations_are_populated(self, store):
        trace = _diagnose(store, CONFIG).trace
        assert trace.duration > 0
        # Every finished span got a wall-time reading.
        assert all(span.duration >= 0 for span in trace.walk())
        assert trace.stage_seconds()[STAGE_DIAGNOSIS] == trace.duration


class TestModes:
    def test_off_mode_produces_no_trace(self, store):
        diagnosis = _diagnose(store, replace(CONFIG, telemetry="off"))
        assert diagnosis.trace is None
        assert diagnosis.result.trace is None
        assert all(
            r.trace is None for r in diagnosis.result.reports.values()
        )

    def test_off_and_full_produce_identical_diagnoses(self, store):
        off = _diagnose(store, replace(CONFIG, telemetry="off"))
        full = _diagnose(store, CONFIG)
        assert off.result.faulty == full.result.faulty
        assert off.result.chain.links == full.result.chain.links
        assert off.result.external_factor == full.result.external_factor
        # Trace fields are excluded from report equality on purpose.
        assert off.result.reports == full.result.reports

    def test_timings_mode_keeps_spans_drops_counters_and_tags(self, store):
        trace = _diagnose(store, replace(CONFIG, telemetry="timings")).trace
        assert trace is not None
        assert set(PIPELINE_STAGES) <= trace.stage_names()
        assert all(not span.counters for span in trace.walk())
        assert all(not span.tags for span in trace.walk())

    def test_config_rejects_unknown_telemetry(self):
        with pytest.raises(ConfigurationError, match="telemetry"):
            FChainConfig(telemetry="verbose")


class TestRegistryExport:
    def test_diagnosis_populates_default_registry(self, store):
        _diagnose(store, CONFIG)
        registry = default_registry()
        assert registry.get("fchain_diagnoses_total").value() == 1
        spans_total = registry.get("fchain_spans_total")
        for stage in PIPELINE_STAGES:
            assert spans_total.value(stage=stage) >= 1, stage
        assert registry.get("fchain_stage_seconds").count(
            stage=STAGE_DIAGNOSIS
        ) == 1

    def test_prometheus_export_round_trips(self, store):
        _diagnose(store, CONFIG)
        parsed = parse_prometheus_text(default_registry().render_prometheus())
        assert parsed.types["fchain_stage_seconds"] == "histogram"
        assert parsed.value("fchain_diagnoses_total") == 1
        assert (
            parsed.value("fchain_spans_total", stage=STAGE_DIAGNOSIS) == 1
        )

    def test_off_mode_leaves_registry_empty(self, store):
        _diagnose(store, replace(CONFIG, telemetry="off"))
        assert default_registry().metrics() == []
