"""Tests for moving-average smoothing."""

import numpy as np
import pytest

from repro.common.timeseries import TimeSeries
from repro.core.smoothing import moving_average, smooth_series


class TestMovingAverage:
    def test_constant_unchanged(self):
        values = np.full(20, 3.0)
        assert moving_average(values, 5) == pytest.approx(values)

    def test_window_one_is_identity(self):
        values = np.arange(10.0)
        assert moving_average(values, 1) == pytest.approx(values)

    def test_reduces_noise(self):
        rng = np.random.default_rng(0)
        noisy = 10 + rng.normal(0, 1, 500)
        smoothed = moving_average(noisy, 7)
        assert smoothed.std() < noisy.std()

    def test_preserves_linear_trend(self):
        values = np.arange(30.0)
        smoothed = moving_average(values, 5)
        assert smoothed[5:-5] == pytest.approx(values[5:-5])

    def test_edges_use_shrunken_window(self):
        values = np.array([0.0, 10.0, 0.0, 10.0, 0.0])
        smoothed = moving_average(values, 5)
        assert smoothed[0] == pytest.approx(values[0])  # radius 0 at edge
        assert smoothed[-1] == pytest.approx(values[-1])

    def test_length_preserved(self):
        assert len(moving_average(np.arange(13.0), 5)) == 13

    def test_does_not_mutate_input(self):
        values = np.arange(10.0)
        moving_average(values, 5)
        assert values == pytest.approx(np.arange(10.0))


class TestSmoothSeries:
    def test_grid_preserved(self):
        ts = TimeSeries(np.arange(10.0), start=42)
        out = smooth_series(ts, 5)
        assert out.start == 42
        assert len(out) == 10
