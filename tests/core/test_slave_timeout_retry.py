"""Regression tests for SlavePool timeout retry-with-backoff.

A slave analysis that hits its timeout is re-submitted up to
``slave_retries`` times (wave-based, exponential backoff) before its
component is surfaced as ``skipped`` with a timeout reason — for both
the thread and the process executor. A transiently wedged worker (one
slow first attempt) must therefore not cost a component its verdict.
"""

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import Metric
from repro.core import engine
from repro.core.config import FChainConfig
from repro.core.engine import SlavePool, _process_analyze
from repro.core.fchain import FChainSlave
from repro.monitoring.store import MetricStore

CONFIG = FChainConfig(cusum_bootstraps=40)

_SENTINEL_ENV = "FCHAIN_TEST_WEDGE_SENTINEL"


def _store(components=3, samples=300, seed=9):
    rng = np.random.default_rng(seed)
    data = {}
    for i in range(components):
        cpu = 30 + rng.normal(0, 1.5, samples)
        if i == 1:
            cpu[-60:] += np.linspace(0, 30, 60)
        data[f"comp-{i}"] = {Metric.CPU_USAGE: cpu}
    return MetricStore.from_arrays(data)


class _FlakySlave(FChainSlave):
    """Wedges the first ``wedge_calls`` analyses of one component."""

    def __init__(self, config, wedge_component, wedge_calls=1, sleep=1.0):
        super().__init__(config, seed=1)
        self.wedge_component = wedge_component
        self.wedge_calls = wedge_calls
        self.sleep = sleep
        self.calls = {}

    def analyze(self, store, component, violation_time):
        count = self.calls.get(component, 0) + 1
        self.calls[component] = count
        if component == self.wedge_component and count <= self.wedge_calls:
            time.sleep(self.sleep)
        return super().analyze(store, component, violation_time)


class TestThreadExecutorRetry:
    def test_transient_wedge_recovers_on_retry(self):
        store = _store()
        slave = _FlakySlave(CONFIG, "comp-0", wedge_calls=1)
        pool = SlavePool(
            slave, jobs=2, timeout=0.25, retries=1, retry_backoff=0.0,
            executor="thread",
        )
        reports, timed_out = pool.analyze_all(store, store.end - 5)
        assert timed_out == frozenset()
        assert not any(r.skipped for r in reports)
        assert [r.component for r in reports] == store.components
        assert slave.calls["comp-0"] == 2
        # The untouched components were analysed once, not re-run.
        assert slave.calls["comp-1"] == slave.calls["comp-2"] == 1

    def test_exhausted_retries_surface_reasoned_skip(self):
        store = _store()
        slave = _FlakySlave(CONFIG, "comp-0", wedge_calls=99)
        pool = SlavePool(
            slave, jobs=2, timeout=0.2, retries=1, retry_backoff=0.0,
            executor="thread",
        )
        reports, timed_out = pool.analyze_all(store, store.end - 5)
        assert timed_out == frozenset({"comp-0"})
        skipped = {r.component: r for r in reports}["comp-0"]
        assert skipped.skipped
        assert "timed out" in skipped.skip_reason
        assert "2 attempt(s)" in skipped.skip_reason

    def test_zero_retries_keeps_historical_behaviour(self):
        store = _store()
        slave = _FlakySlave(CONFIG, "comp-0", wedge_calls=99)
        pool = SlavePool(
            slave, jobs=2, timeout=0.2, retries=0, executor="thread"
        )
        reports, timed_out = pool.analyze_all(store, store.end - 5)
        assert timed_out == frozenset({"comp-0"})
        assert slave.calls["comp-0"] == 1
        assert "1 attempt(s)" in (
            {r.component: r for r in reports}["comp-0"].skip_reason
        )


def _wedge_once_analyze(handle, config, seed, component, violation_time):
    """Module-level (picklable) wedge: slow until the sentinel exists.

    The sentinel file is written before sleeping, so the retry wave's
    fresh worker process sees it and proceeds — a transient wedge.
    """
    if component == "comp-0":
        sentinel = os.environ[_SENTINEL_ENV]
        if not os.path.exists(sentinel):
            with open(sentinel, "w") as f:
                f.write("wedged")
            time.sleep(5.0)
    return _process_analyze(handle, config, seed, component, violation_time)


class TestProcessExecutorRetry:
    def test_transient_wedge_recovers_on_retry(self, monkeypatch, tmp_path):
        monkeypatch.setenv(_SENTINEL_ENV, str(tmp_path / "wedged"))
        monkeypatch.setattr(engine, "_process_analyze", _wedge_once_analyze)
        store = _store()
        pool = SlavePool(
            FChainSlave(CONFIG, seed=1), jobs=2, timeout=1.0, retries=1,
            retry_backoff=0.0, executor="process",
        )
        try:
            reports, timed_out = pool.analyze_all(store, store.end - 5)
        finally:
            pool.close()
        assert timed_out == frozenset()
        assert not any(r.skipped for r in reports)
        assert [r.component for r in reports] == store.components

    def test_exhausted_retries_surface_reasoned_skip(self, monkeypatch):
        monkeypatch.setattr(
            engine, "_process_analyze", _always_wedged_analyze
        )
        store = _store()
        pool = SlavePool(
            FChainSlave(CONFIG, seed=1), jobs=2, timeout=0.3, retries=1,
            retry_backoff=0.0, executor="process",
        )
        try:
            reports, timed_out = pool.analyze_all(store, store.end - 5)
        finally:
            pool.close()
        assert timed_out == frozenset({"comp-0"})
        skipped = {r.component: r for r in reports}["comp-0"]
        assert skipped.skipped
        assert "timed out" in skipped.skip_reason
        # The poisoned pool was discarded after the final wave.
        assert pool._pool is None


def _always_wedged_analyze(handle, config, seed, component, violation_time):
    """Module-level (picklable) wedge that never recovers."""
    if component == "comp-0":
        time.sleep(5.0)
    return _process_analyze(handle, config, seed, component, violation_time)


class TestConfigurationPlumbing:
    def test_pool_defaults_from_config(self):
        config = replace(CONFIG, slave_retries=3, slave_retry_backoff=0.5)
        pool = SlavePool(FChainSlave(config))
        assert pool.retries == 3
        assert pool.retry_backoff == 0.5
        override = SlavePool(
            FChainSlave(config), retries=0, retry_backoff=0.0
        )
        assert override.retries == 0
        assert override.retry_backoff == 0.0

    def test_invalid_retry_settings_rejected(self):
        with pytest.raises(ConfigurationError, match="retries"):
            SlavePool(FChainSlave(CONFIG), retries=-1)
        with pytest.raises(ConfigurationError, match="retry_backoff"):
            SlavePool(FChainSlave(CONFIG), retry_backoff=-0.1)
        with pytest.raises(ConfigurationError, match="slave_retries"):
            FChainConfig(slave_retries=-2).validate()
