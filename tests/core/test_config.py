"""Tests for FChainConfig validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import FChainConfig


def test_defaults_match_paper():
    config = FChainConfig()
    assert config.look_back_window == 100
    assert config.concurrency_threshold == 2.0
    assert config.burst_window == 20
    assert config.high_frequency_fraction == pytest.approx(0.9)
    assert config.burst_percentile == pytest.approx(90.0)
    assert config.tangent_tolerance == pytest.approx(0.1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"look_back_window": 0},
        {"concurrency_threshold": -1},
        {"burst_window": 1},
        {"high_frequency_fraction": 0.0},
        {"high_frequency_fraction": 1.5},
        {"burst_percentile": 0},
        {"smoothing_window": 0},
        {"markov_bins": 1},
        {"cusum_confidence": 1.0},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        FChainConfig(**kwargs)


def test_with_window():
    config = FChainConfig().with_window(500)
    assert config.look_back_window == 500
    assert config.burst_window == 20


def test_frozen():
    config = FChainConfig()
    with pytest.raises(Exception):
        config.look_back_window = 5
