"""Tests for online pinpointing validation."""

import pytest

from repro.apps.rubis import APP1, DB, RubisApplication
from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.pinpoint import PinpointResult
from repro.core.propagation import ComponentReport, PropagationChain
from repro.core.validation import (
    apply_validation,
    validate_component,
    validate_pinpointing,
)
from repro.faults.library import BottleneckFault, CpuHogFault


def make_result(faulty, reports=None):
    return PinpointResult(
        faulty=frozenset(faulty),
        external_factor=False,
        chain=PropagationChain(links=()),
        reports=reports or {},
    )


@pytest.fixture(scope="module")
def hogged_app():
    app = RubisApplication(seed=61, duration=1600)
    app.inject(CpuHogFault(900, DB))
    app.run(1000)
    assert app.slo.first_violation_after(900) is not None
    return app


CONFIG = FChainConfig(validation_horizon=30)


class TestValidateComponent:
    def test_true_positive_confirmed(self, hogged_app):
        outcome = validate_component(
            hogged_app, DB, Metric.CPU_USAGE, CONFIG
        )
        assert outcome.confirmed
        assert outcome.improvement > 0.3

    def test_false_alarm_rejected(self, hogged_app):
        outcome = validate_component(
            hogged_app, APP1, Metric.CPU_USAGE, CONFIG
        )
        assert not outcome.confirmed

    def test_app_not_mutated(self, hogged_app):
        before = hogged_app.vms[DB].vcpus
        validate_component(hogged_app, DB, Metric.CPU_USAGE, CONFIG)
        assert hogged_app.vms[DB].vcpus == before
        assert hogged_app.time == 1000


class TestValidatePinpointing:
    def test_filters_false_alarm_keeps_culprit(self, hogged_app):
        result = make_result(
            {DB, APP1},
            reports={
                DB: ComponentReport(DB),
                APP1: ComponentReport(APP1),
            },
        )
        outcomes = validate_pinpointing(hogged_app, result, CONFIG)
        assert outcomes[DB].confirmed
        assert not outcomes[APP1].confirmed
        validated = apply_validation(result, outcomes)
        assert validated.faulty == frozenset({DB})

    def test_bottleneck_validation(self):
        app = RubisApplication(seed=62, duration=1600)
        app.inject(BottleneckFault(900, DB, cap=0.1))
        app.run(1000)
        assert app.slo.first_violation_after(900) is not None
        result = make_result({DB}, reports={DB: ComponentReport(DB)})
        outcomes = validate_pinpointing(app, result, CONFIG)
        assert outcomes[DB].confirmed

    def test_empty_result_no_outcomes(self, hogged_app):
        outcomes = validate_pinpointing(hogged_app, make_result(set()), CONFIG)
        assert outcomes == {}


class TestApplyValidation:
    def test_unvalidated_components_kept(self):
        result = make_result({"a"})
        assert apply_validation(result, {}).faulty == frozenset({"a"})
