"""Tests for black-box dependency discovery."""

import networkx as nx

from repro.cloud.network import PacketEvent, PacketTrace, SyntheticPacketizer
import pytest

from repro.core.dependency import (
    discover_dependencies,
    extract_flows,
    load_graph,
    propagation_path_confidence,
    propagation_path_exists,
    save_graph,
)


class TestFlowExtraction:
    def test_distinct_flow_ids(self):
        events = [(0.0, 1), (0.001, 1), (5.0, 2), (5.001, 2)]
        flows = extract_flows(events, "a", "b")
        assert len(flows) == 2
        assert flows[0].packets == 2

    def test_gap_splits_reused_flow(self):
        events = [(0.0, 1), (0.01, 1), (10.0, 1), (10.01, 1)]
        flows = extract_flows(events, "a", "b", gap_threshold=0.1)
        assert len(flows) == 2

    def test_continuous_stream_single_flow(self):
        events = [(i * 0.01, 0) for i in range(1000)]
        flows = extract_flows(events, "a", "b", gap_threshold=0.1)
        assert len(flows) == 1

    def test_empty(self):
        assert extract_flows([], "a", "b") == []

    def test_sorted_by_start(self):
        events = [(5.0, 2), (0.0, 1)]
        flows = extract_flows(events, "a", "b")
        assert flows[0].start <= flows[1].start


class TestDiscovery:
    def _request_trace(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, streaming=False, seed_parts=("d", 1))
        for t in range(120):
            pkt.emit_path(t, [("client", "web"), ("web", "db")], 8.0)
        return trace

    def test_request_reply_graph_recovered(self):
        result = discover_dependencies(self._request_trace())
        assert result.discovered
        assert ("web", "db") in result.graph.edges
        assert "client" not in result.graph

    def test_streaming_trace_fails(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, streaming=True, seed_parts=("d", 2))
        for t in range(120):
            pkt.emit(t, "pe1", "pe2", 40.0)
        result = discover_dependencies(trace)
        assert not result.discovered
        assert result.flow_counts[("pe1", "pe2")] == 1

    def test_rare_traffic_rejected(self):
        trace = PacketTrace()
        trace.extend(
            [PacketEvent(float(i), "a", "b", flow=i) for i in range(5)]
        )
        result = discover_dependencies(trace, min_flows=20)
        assert not result.discovered

    def test_empty_trace(self):
        result = discover_dependencies(PacketTrace())
        assert not result.discovered


class TestPropagationPaths:
    def _graph(self):
        g = nx.DiGraph()
        g.add_edges_from([("web", "app1"), ("web", "app2"), ("app1", "db"),
                          ("app2", "db")])
        return g

    def test_downstream_path(self):
        assert propagation_path_exists(self._graph(), "web", "db")

    def test_back_pressure_reverse_path(self):
        assert propagation_path_exists(self._graph(), "db", "web")

    def test_siblings_have_no_path(self):
        """Fig. 5: app1 -> app2 propagation is spurious."""
        assert not propagation_path_exists(self._graph(), "app1", "app2")

    def test_self_path(self):
        assert propagation_path_exists(self._graph(), "db", "db")

    def test_unknown_node(self):
        assert not propagation_path_exists(self._graph(), "web", "ghost")


class TestPathConfidence:
    def _weighted(self):
        g = nx.DiGraph()
        g.add_edge("web", "app1", weight=0.8)
        g.add_edge("app1", "db", weight=0.5)
        g.add_edge("web", "app2", weight=0.9)
        return g

    def test_path_confidence_is_edge_product(self):
        assert propagation_path_confidence(
            self._weighted(), "web", "db"
        ) == pytest.approx(0.4)

    def test_reverse_path_counts(self):
        """Back-pressure rides the same edges at the same confidence."""
        assert propagation_path_confidence(
            self._weighted(), "db", "web"
        ) == pytest.approx(0.4)

    def test_best_of_multiple_paths(self):
        g = self._weighted()
        g.add_edge("web", "db", weight=0.45)
        assert propagation_path_confidence(g, "web", "db") == pytest.approx(
            0.45
        )

    def test_no_path_zero_self_one(self):
        g = self._weighted()
        assert propagation_path_confidence(g, "app1", "app2") == 0.0
        assert propagation_path_confidence(g, "db", "db") == 1.0
        assert propagation_path_confidence(g, "web", "ghost") == 0.0

    def test_unweighted_degenerates_to_reachability(self):
        g = nx.DiGraph([("a", "b"), ("b", "c")])
        assert propagation_path_confidence(g, "a", "c") == pytest.approx(1.0)
        assert propagation_path_confidence(g, "c", "a") == pytest.approx(1.0)


class TestWeightedGraphIO:
    def test_weighted_round_trip(self, tmp_path):
        g = nx.DiGraph()
        g.add_edge("web", "app1", weight=0.75)
        g.add_edge("app1", "db")  # unweighted edges stay pairs
        path = tmp_path / "graph.json"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.edges["web", "app1"]["weight"] == pytest.approx(0.75)
        assert "weight" not in loaded.edges["app1", "db"]
