"""Tests for the online Markov prediction model."""

import numpy as np
import pytest

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.core.prediction import MarkovPredictor, prediction_errors


class TestWarmup:
    def test_not_ready_before_warmup(self):
        model = MarkovPredictor(warmup=10)
        for v in range(9):
            assert model.update(float(v)) is None
        assert not model.ready

    def test_ready_after_warmup(self):
        model = MarkovPredictor(warmup=10)
        for v in range(10):
            model.update(float(v))
        assert model.ready

    def test_predict_none_pre_warmup(self):
        assert MarkovPredictor().predict() is None

    def test_rejects_too_few_bins(self):
        with pytest.raises(ValueError):
            MarkovPredictor(bins=1)


class TestLearning:
    def test_periodic_pattern_learned(self):
        # Unambiguous cycle: each value determines its successor.
        model = MarkovPredictor(bins=20, warmup=21)
        pattern = [10.0, 20.0, 30.0] * 100
        errors = [model.update(v) for v in pattern]
        late = [e for e in errors[200:] if e is not None]
        assert np.mean(late) < 3.0

    def test_constant_series_near_zero_error(self):
        model = MarkovPredictor(warmup=10)
        errors = [model.update(5.0) for _ in range(200)]
        late = [e for e in errors[50:] if e is not None]
        assert np.mean(late) < 0.5

    def test_unseen_regime_large_error(self):
        model = MarkovPredictor(bins=20, warmup=20)
        for _ in range(300):
            model.update(10.0 + float(spawn_rng("a").normal(0, 0.5)))
        error = model.update(100.0)
        assert error is not None and error > 50

    def test_unseen_row_falls_back_to_marginal(self):
        model = MarkovPredictor(bins=20, warmup=20)
        for v in [10.0] * 100:
            model.update(v)
        model.update(100.0)  # clamp into an unvisited edge bin
        prediction = model.predict()
        assert prediction == pytest.approx(10.0, abs=15.0)

    def test_transition_matrix_rows_sum_to_one(self):
        model = MarkovPredictor(bins=10, warmup=10)
        rng = spawn_rng("tm")
        for _ in range(500):
            model.update(float(rng.normal(50, 10)))
        matrix = model.transition_matrix()
        assert matrix.shape == (10, 10)
        assert matrix.sum(axis=1) == pytest.approx(np.ones(10))

    def test_transition_matrix_requires_warmup(self):
        with pytest.raises(RuntimeError):
            MarkovPredictor().transition_matrix()

    def test_halflife_decay_applied(self):
        model = MarkovPredictor(bins=5, warmup=5, halflife=50)
        for _ in range(200):
            model.update(1.0)
        assert model._counts.max() < 200


class TestDegenerateGrid:
    def test_constant_warmup_zero_headroom_does_not_divide_by_zero(self):
        # Regression: a constant warmup with headroom=0 freezes lo == hi;
        # _bin_of used to divide by the zero span.
        model = MarkovPredictor(bins=8, warmup=4, headroom=0.0)
        for _ in range(4):
            model.update(5.0)
        assert model.ready
        assert model._bin_of(5.0) == 0
        assert model._bin_of(4.0) == 0
        assert model._bin_of(6.0) == model.bins - 1
        # And the model keeps learning/predicting through the clamp.
        for _ in range(20):
            model.update(5.0)
        error = model.update(5.0)
        assert error is not None and np.isfinite(error)

    def test_batched_path_clamps_identically(self):
        model = MarkovPredictor(bins=8, warmup=4, headroom=0.0)
        for _ in range(4):
            model.update(5.0)
        values = np.array([4.0, 5.0, 6.0, 5.0])
        expected = np.array([model._bin_of(v) for v in values])
        np.testing.assert_array_equal(model._bins_of(values), expected)

    def test_subnormal_span_does_not_overflow(self):
        # Pinned hypothesis falsifying example: a warmup of
        # [0.0, 2.2e-311] with headroom=0 freezes a *subnormal* positive
        # span; (1.0 - lo) / span * bins then overflows to inf and
        # int(inf) raised OverflowError in the scalar path while the
        # batched path silently clipped — scalar and chunked ingest
        # diverged.
        data = [0.0, 2.2e-311, 1.0]
        scalar = MarkovPredictor(bins=2, halflife=1, warmup=2, headroom=0.0)
        for v in data:
            scalar.step(v)  # must not raise
        batched = MarkovPredictor(bins=2, halflife=1, warmup=2, headroom=0.0)
        batched.update_many(np.asarray(data, dtype=float))
        assert scalar._previous_bin == batched._previous_bin
        np.testing.assert_array_equal(
            scalar._counts, batched._counts
        )

    def test_subnormal_span_scalar_and_batched_bins_agree(self):
        model = MarkovPredictor(bins=4, warmup=2, headroom=0.0)
        for v in (0.0, 2.2e-311):
            model.update(v)
        assert model.ready
        values = np.array([-1.0, 0.0, 2.2e-311, 1e-300, 1.0, 1e308])
        expected = np.array([model._bin_of(v) for v in values])
        np.testing.assert_array_equal(model._bins_of(values), expected)


class TestUpdateMany:
    def test_nan_during_warmup_then_errors(self):
        model = MarkovPredictor(warmup=10)
        errors = model.update_many(np.full(50, 3.0))
        assert len(errors) == 50
        # Warmup samples and the first post-warmup sample (which only
        # seeds the chain state) have no prediction.
        assert np.isnan(errors[:11]).all()
        assert np.isfinite(errors[11:]).all()

    def test_matches_scalar_loop(self):
        rng = spawn_rng("update-many")
        values = rng.normal(50, 10, size=300)
        scalar = MarkovPredictor(bins=16, halflife=40, warmup=20)
        expected = np.full(len(values), np.nan)
        for i, v in enumerate(values):
            delta = scalar.step(float(v))
            if delta is not None:
                expected[i] = delta
        batched = MarkovPredictor(bins=16, halflife=40, warmup=20)
        np.testing.assert_array_equal(batched.update_many(values), expected)

    def test_rejects_non_finite_samples(self):
        model = MarkovPredictor(warmup=5)
        values = np.full(30, 2.0)
        values[17] = np.nan
        with pytest.raises(ValueError, match="finite"):
            model.update_many(values)

    def test_rejects_multidimensional_input(self):
        with pytest.raises(ValueError, match="1-D"):
            MarkovPredictor().update_many(np.zeros((3, 3)))

    def test_empty_chunk_is_a_no_op(self):
        model = MarkovPredictor(warmup=5)
        assert len(model.update_many(np.empty(0))) == 0
        assert not model.ready


class TestBatchErrors:
    def test_length_matches_series(self):
        series = TimeSeries(np.full(100, 3.0))
        errors = prediction_errors(series, warmup=10)
        assert len(errors) == 100

    def test_warmup_entries_nan(self):
        series = TimeSeries(np.full(100, 3.0))
        errors = prediction_errors(series, warmup=10)
        assert np.isnan(errors[:10]).all()
        assert np.isfinite(errors[20:]).all()

    def test_signed_errors_signed(self):
        values = np.concatenate([np.full(100, 50.0), np.full(5, 200.0)])
        errors = prediction_errors(TimeSeries(values), warmup=20, signed=True)
        assert errors[100] > 0  # jump above prediction
        down = np.concatenate([np.full(100, 50.0), np.full(5, 1.0)])
        errors = prediction_errors(TimeSeries(down), warmup=20, signed=True)
        assert errors[100] < 0

    def test_step_has_error_spike(self):
        values = np.concatenate([np.full(150, 10.0), np.full(20, 40.0)])
        errors = prediction_errors(TimeSeries(values), warmup=20)
        assert errors[150] > 10
