"""Tests for FFT burst extraction and the dynamic error threshold."""

import numpy as np
import pytest

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.core.burst import (
    burst_signal,
    expected_error_profile,
    expected_prediction_error,
)


class TestBurstSignal:
    def test_flat_signal_zero_burst(self):
        burst = burst_signal(np.full(40, 10.0))
        assert np.abs(burst).max() < 1e-9

    def test_slow_trend_mostly_removed(self):
        t = np.linspace(0, 1, 64)
        slow = 100 * t  # one very low-frequency ramp
        burst = burst_signal(slow, high_frequency_fraction=0.5)
        assert np.abs(burst[10:-10]).max() < 20

    def test_high_frequency_preserved(self):
        t = np.arange(64)
        fast = 10 * np.sin(2 * np.pi * t / 4)
        burst = burst_signal(fast, high_frequency_fraction=0.9)
        assert np.abs(burst).max() > 7

    def test_short_window_zero(self):
        assert (burst_signal(np.array([1.0, 2.0])) == 0).all()

    def test_length_preserved(self):
        assert len(burst_signal(np.arange(41.0))) == 41


class TestExpectedError:
    def test_bursty_window_higher_threshold(self):
        """Fig. 4: the expected error tracks the local burstiness."""
        rng = spawn_rng("fig4")
        quiet = 50 + rng.normal(0, 0.5, 200)
        bursty = 50 + rng.normal(0, 0.5, 200)
        bursty[80:120] += 25 * np.sin(np.arange(40) * 1.3)
        quiet_threshold = expected_prediction_error(TimeSeries(quiet), 100)
        bursty_threshold = expected_prediction_error(TimeSeries(bursty), 100)
        assert bursty_threshold > 3 * quiet_threshold

    def test_nonnegative_and_floored(self):
        series = TimeSeries(np.full(100, 40.0))
        threshold = expected_prediction_error(series, 50)
        assert threshold > 0  # level-based floor

    def test_edge_positions_clip(self):
        series = TimeSeries(np.arange(50.0))
        assert expected_prediction_error(series, 0) >= 0
        assert expected_prediction_error(series, 49) >= 0

    def test_percentile_monotone(self):
        rng = spawn_rng("pct")
        series = TimeSeries(50 + rng.normal(0, 5, 200))
        low = expected_prediction_error(series, 100, percentile=50)
        high = expected_prediction_error(series, 100, percentile=99)
        assert high >= low

    def test_profile_matches_pointwise(self):
        rng = spawn_rng("profile")
        series = TimeSeries(10 + rng.normal(0, 1, 60))
        profile = expected_error_profile(series)
        assert len(profile) == 60
        assert profile[30] == pytest.approx(
            expected_prediction_error(series, 30)
        )
