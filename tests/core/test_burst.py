"""Tests for FFT burst extraction and the dynamic error threshold."""

import numpy as np
import pytest

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.core.burst import (
    burst_signal,
    expected_error_profile,
    expected_prediction_error,
    expected_prediction_errors,
)


class TestBurstSignal:
    def test_rejects_nan_in_window(self):
        # A NaN would silently zero the whole spectrum (and with it the
        # dynamic threshold); the extractor must refuse instead.
        values = np.full(40, 10.0)
        values[13] = np.nan
        with pytest.raises(ValueError, match="finite"):
            burst_signal(values)

    def test_rejects_infinite_sample(self):
        values = np.full(40, 10.0)
        values[0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            burst_signal(values)
    def test_flat_signal_zero_burst(self):
        burst = burst_signal(np.full(40, 10.0))
        assert np.abs(burst).max() < 1e-9

    def test_slow_trend_mostly_removed(self):
        t = np.linspace(0, 1, 64)
        slow = 100 * t  # one very low-frequency ramp
        burst = burst_signal(slow, high_frequency_fraction=0.5)
        assert np.abs(burst[10:-10]).max() < 20

    def test_high_frequency_preserved(self):
        t = np.arange(64)
        fast = 10 * np.sin(2 * np.pi * t / 4)
        burst = burst_signal(fast, high_frequency_fraction=0.9)
        assert np.abs(burst).max() > 7

    def test_short_window_zero(self):
        assert (burst_signal(np.array([1.0, 2.0])) == 0).all()

    def test_length_preserved(self):
        assert len(burst_signal(np.arange(41.0))) == 41


class TestExpectedError:
    def test_bursty_window_higher_threshold(self):
        """Fig. 4: the expected error tracks the local burstiness."""
        rng = spawn_rng("fig4")
        quiet = 50 + rng.normal(0, 0.5, 200)
        bursty = 50 + rng.normal(0, 0.5, 200)
        bursty[80:120] += 25 * np.sin(np.arange(40) * 1.3)
        quiet_threshold = expected_prediction_error(TimeSeries(quiet), 100)
        bursty_threshold = expected_prediction_error(TimeSeries(bursty), 100)
        assert bursty_threshold > 3 * quiet_threshold

    def test_nonnegative_and_floored(self):
        series = TimeSeries(np.full(100, 40.0))
        threshold = expected_prediction_error(series, 50)
        assert threshold > 0  # level-based floor

    def test_edge_positions_clip(self):
        series = TimeSeries(np.arange(50.0))
        assert expected_prediction_error(series, 0) >= 0
        assert expected_prediction_error(series, 49) >= 0

    def test_percentile_monotone(self):
        rng = spawn_rng("pct")
        series = TimeSeries(50 + rng.normal(0, 5, 200))
        low = expected_prediction_error(series, 100, percentile=50)
        high = expected_prediction_error(series, 100, percentile=99)
        assert high >= low

    def test_profile_matches_pointwise(self):
        rng = spawn_rng("profile")
        series = TimeSeries(10 + rng.normal(0, 1, 60))
        profile = expected_error_profile(series)
        assert len(profile) == 60
        assert profile[30] == pytest.approx(
            expected_prediction_error(series, 30)
        )

    def test_rejects_nan_in_any_window(self):
        values = 10 + spawn_rng("nan").normal(0, 1, 80)
        values[40] = np.nan
        with pytest.raises(ValueError, match="finite"):
            expected_prediction_errors(TimeSeries(values), [35, 60])


class TestBatchedExpectedErrors:
    def test_matches_scalar_reference_bitwise(self):
        """The stacked-FFT batch is the per-point computation, verbatim:
        every threshold — interior windows, clipped edge windows, and
        out-of-range timestamps — must agree bit for bit."""
        rng = spawn_rng("batched")
        series = TimeSeries(50 + rng.normal(0, 4, 150), start=10)
        times = [10, 12, 40, 80, 80, 120, 159, 5, 200]

        def scalar_reference(time):
            window = series.around(time, 20)
            if len(window) == 0:
                return 0.0
            if len(window) < 4:
                burst = np.zeros(len(window))
            else:
                burst = burst_signal(window.values)
            threshold = float(np.percentile(np.abs(burst), 90.0))
            floor = 0.02 * float(np.mean(np.abs(window.values)))
            return max(threshold, floor)

        expected = np.array([scalar_reference(t) for t in times])
        actual = expected_prediction_errors(series, times)
        np.testing.assert_array_equal(actual, expected)

    def test_empty_times_empty_result(self):
        series = TimeSeries(np.arange(30.0))
        assert len(expected_prediction_errors(series, [])) == 0

    def test_out_of_range_timestamp_gets_zero(self):
        series = TimeSeries(np.arange(30.0))
        assert expected_prediction_errors(series, [500])[0] == 0.0
