"""Incremental engine equivalence and SlavePool behaviour.

The contract under test: the incremental engine (persistent slave state,
warm error streams, per-window caches, optional parallel fan-out) must
produce *identical* diagnoses to the original replay engine on the same
data — same faulty sets, same propagation chains (components and onset
times), same external-factor verdicts.
"""

import time

import numpy as np
import pytest

from repro.apps.hadoop import MAPS, HadoopApplication
from repro.common.errors import DiagnosisError
from repro.common.types import METRIC_NAMES, Metric
from repro.core.config import FChainConfig
from repro.core.engine import SlavePool
from repro.core.fchain import FChain, FChainMaster, FChainSlave
from repro.core.prediction import prediction_errors
from repro.core.selection import select_abnormal_changes
from repro.faults.library import InfiniteLoopFault
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore


def _append_ticks(store, component, values, start=0):
    """Strict per-tick ingest of one component's CPU series."""
    for i, value in enumerate(values):
        t = start + i
        store.ingest(
            IngestBatch(
                runs=[
                    IngestRun(
                        component,
                        Metric.CPU_USAGE,
                        t,
                        np.asarray([float(value)]),
                    )
                ],
                watermark=t + 1,
            )
        )


@pytest.fixture(scope="module")
def hadoop_fault_run():
    """A Hadoop run with concurrent infinite loops in the mappers."""
    app = HadoopApplication(seed=72)
    for m in MAPS:
        app.inject(InfiniteLoopFault(900, m))
    app.run(1200)
    violation = app.slo.first_violation_after(900)
    assert violation is not None
    return app, violation


def _diagnosis_key(result):
    return (
        result.faulty,
        result.chain.links,
        result.external_factor,
        result.skipped,
    )


def assert_engines_equivalent(store, violation, seed):
    """Replay vs cold-warm vs cache-warm incremental, all identical."""
    replay = FChainMaster(FChainConfig(), seed=seed, incremental=False)
    expected = replay.diagnose(store, violation)

    warm = FChainMaster(FChainConfig(), seed=seed, incremental=True)
    first = warm.diagnose(store, violation)
    # Second warm diagnosis is served from the per-window caches and the
    # already-synced models; it must not drift.
    second = warm.diagnose(store, violation)

    assert _diagnosis_key(first) == _diagnosis_key(expected)
    assert _diagnosis_key(second) == _diagnosis_key(expected)
    for component in expected.faulty:
        assert first.implicated_metrics(component) == (
            expected.implicated_metrics(component)
        )


class TestEngineEquivalence:
    def test_rubis(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        assert_engines_equivalent(app.store, violation, seed=101)

    def test_systems(self, systems_memleak_run):
        app, violation = systems_memleak_run
        assert_engines_equivalent(app.store, violation, seed=202)

    def test_hadoop(self, hadoop_fault_run):
        app, violation = hadoop_fault_run
        assert_engines_equivalent(app.store, violation, seed=72)

    def test_matches_inline_batch_reference(self, rubis_cpuhog_run):
        """The slave's warm analysis equals a literal transcription of the
        original batch path: fresh ``prediction_errors`` over the full
        series, then ``select_abnormal_changes`` on the window slices."""
        app, violation = rubis_cpuhog_run
        store = app.store
        config = FChainConfig()
        seed = 101
        slave = FChainSlave(config, seed=seed)
        slave.sync_with_store(store, store.end)
        window_start = violation - config.look_back_window
        window_end = violation + config.analysis_grace + 1
        for component in store.components:
            expected = []
            for metric in store.metrics_for(component):
                full = store.series(component, metric).window(
                    store.start, window_end
                )
                if len(full) < 2 * config.min_segment:
                    continue
                errors = prediction_errors(
                    full,
                    bins=config.markov_bins,
                    halflife=config.markov_halflife,
                    signed=True,
                )
                raw = full.window(window_start, window_end)
                history = full.window(full.start, raw.start)
                split = raw.start - full.start
                expected.extend(
                    select_abnormal_changes(
                        raw,
                        history,
                        metric,
                        config,
                        seed=(seed, component),
                        errors=errors[split:],
                        history_errors=errors[:split],
                    )
                )
            report = slave.analyze(store, component, violation)
            assert report.abnormal_changes == expected

    def test_warm_error_streams_match_batch(self, rubis_cpuhog_run):
        """The slave's signed error buffers equal the batch replay."""
        app, violation = rubis_cpuhog_run
        store = app.store
        config = FChainConfig()
        slave = FChainSlave(config, seed=101)
        slave.sync_with_store(store, store.end)
        component = store.components[0]
        metric = store.metrics_for(component)[0]
        full = store.series(component, metric)
        batch = prediction_errors(
            full,
            bins=config.markov_bins,
            halflife=config.markov_halflife,
            signed=True,
        )
        streamed = slave._streams[(component, metric)].view(len(full))
        mask = np.isfinite(batch)
        np.testing.assert_allclose(streamed[mask], batch[mask], rtol=1e-12)
        assert np.all(~np.isfinite(streamed[~mask]))


class TestSlavePool:
    def test_parallel_matches_serial(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        serial = FChainMaster(
            FChainConfig(), seed=101, jobs=1, incremental=True
        ).diagnose(app.store, violation)
        parallel = FChainMaster(
            FChainConfig(), seed=101, jobs=4, incremental=True
        ).diagnose(app.store, violation)
        assert _diagnosis_key(parallel) == _diagnosis_key(serial)

    def test_reports_in_component_order(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        pool = SlavePool(FChainSlave(FChainConfig(), seed=1), jobs=4)
        reports, timed_out = pool.analyze_all(app.store, violation)
        assert [r.component for r in reports] == app.store.components
        assert timed_out == frozenset()

    def test_timeout_marks_component_skipped(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        slow_component = app.store.components[0]

        class WedgedSlave(FChainSlave):
            def analyze(self, store, component, violation_time):
                if component == slow_component:
                    time.sleep(2.0)
                return super().analyze(store, component, violation_time)

        slave = WedgedSlave(FChainConfig(), seed=1)
        slave.sync_with_store(app.store, app.store.end)
        pool = SlavePool(slave, jobs=2, timeout=0.2)
        reports, timed_out = pool.analyze_all(app.store, violation)
        assert slow_component in timed_out
        by_component = {r.component: r for r in reports}
        assert by_component[slow_component].skipped
        assert len(reports) == len(app.store.components)

    def test_rejects_bad_parameters(self):
        from repro.common.errors import ConfigurationError

        slave = FChainSlave(FChainConfig())
        with pytest.raises(ConfigurationError):
            SlavePool(slave, jobs=-1)
        with pytest.raises(ConfigurationError):
            SlavePool(slave, timeout=0.0)


class TestIncrementalState:
    def test_rebinding_to_new_store_resets(self):
        a = MetricStore.from_arrays(
            {"c": {Metric.CPU_USAGE: np.full(120, 30.0)}}
        )
        b = MetricStore.from_arrays(
            {"c": {Metric.CPU_USAGE: np.full(120, 70.0)}}
        )
        slave = FChainSlave(FChainConfig())
        slave.sync_with_store(a, a.end)
        assert slave._consumed[("c", Metric.CPU_USAGE)] == 120
        slave.sync_with_store(b, b.end)
        # Had the slave kept store-a state, the model would have been fed
        # 240 samples; the reset keeps the streams aligned with store b.
        assert slave._consumed[("c", Metric.CPU_USAGE)] == 120
        streamed = slave._streams[("c", Metric.CPU_USAGE)].view()
        batch = prediction_errors(
            b.series("c", Metric.CPU_USAGE),
            bins=slave.config.markov_bins,
            halflife=slave.config.markov_halflife,
            signed=True,
        )
        mask = np.isfinite(batch)
        np.testing.assert_allclose(streamed[mask], batch[mask], rtol=1e-12)

    def test_diagnosis_error_before_history(self):
        store = MetricStore.from_arrays(
            {"c": {Metric.CPU_USAGE: np.full(50, 30.0)}}, start=100
        )
        fchain = FChain()
        with pytest.raises(DiagnosisError):
            fchain.localize(store, violation_time=100)
        with pytest.raises(DiagnosisError):
            fchain.localize(store, violation_time=40)

    def test_insufficient_data_surfaced_as_skipped(self):
        store = MetricStore.from_arrays(
            {
                "a": {Metric.CPU_USAGE: np.full(8, 30.0)},
                "b": {Metric.CPU_USAGE: np.full(8, 40.0)},
            }
        )
        diagnosis = FChain().localize(store, violation_time=6)
        assert diagnosis.skipped == frozenset({"a", "b"})
        assert diagnosis.faulty == frozenset()

    def test_partial_component_skipped(self):
        store = MetricStore()
        store.ingest(
            IngestBatch(
                runs=[
                    IngestRun(
                        "full", Metric.CPU_USAGE, 0, np.full(150, 30.0)
                    )
                ],
                watermark=150,
            )
        )
        # "late" holds only a few samples — not enough history for any
        # analysis.
        store.ingest(
            IngestBatch(
                runs=[
                    IngestRun("late", Metric.CPU_USAGE, 0, np.full(4, 10.0))
                ]
            )
        )
        result = FChainMaster(FChainConfig()).diagnose(store, 140)
        assert result.skipped == frozenset({"late"})
        assert "skipped" in result.summary()


class TestStoreViews:
    def test_series_reads_are_zero_copy(self):
        store = MetricStore.from_arrays(
            {"c": {Metric.CPU_USAGE: np.arange(300, dtype=float)}}
        )
        first = store.series("c", Metric.CPU_USAGE)
        second = store.series("c", Metric.CPU_USAGE)
        assert np.shares_memory(first.values, second.values)
        windowed = store.window("c", Metric.CPU_USAGE, 50, 150)
        assert np.shares_memory(windowed.values, first.values)
        np.testing.assert_array_equal(
            windowed.values, np.arange(50, 150, dtype=float)
        )

    def test_views_stay_valid_across_appends(self):
        store = MetricStore()
        _append_ticks(store, "c", range(300))
        early = store.series("c", Metric.CPU_USAGE)
        snapshot = early.values.copy()
        _append_ticks(store, "c", range(300, 900), start=300)
        np.testing.assert_array_equal(early.values, snapshot)
        grown = store.series("c", Metric.CPU_USAGE)
        assert len(grown) == 900
        np.testing.assert_array_equal(
            grown.values, np.arange(900, dtype=float)
        )

    def test_all_metrics_supported(self):
        data = {
            "c": {m: np.full(40, 10.0 + i) for i, m in enumerate(METRIC_NAMES)}
        }
        store = MetricStore.from_arrays(data)
        for metric in METRIC_NAMES:
            assert len(store.series("c", metric)) == 40
