"""The redesigned localization API: Diagnosis, shims, config validation."""

import numpy as np
import pytest

from repro.baselines.base import LocalizationContext, Localizer
from repro.common.errors import ConfigurationError
from repro.common.types import Metric
from repro.core import Diagnosis, FChain, FChainConfig
from repro.core.fchain import FChainMaster, FChainSlave
from repro.monitoring.store import MetricStore


def _flat_store(samples=200, components=("a", "b")):
    return MetricStore.from_arrays(
        {
            c: {Metric.CPU_USAGE: np.full(samples, 30.0 + 5 * i)}
            for i, c in enumerate(components)
        }
    )


class TestLocalizeSignature:
    def test_keyword_call_returns_diagnosis(self):
        store = _flat_store()
        diagnosis = FChain().localize(store, violation_time=150)
        assert isinstance(diagnosis, Diagnosis)
        assert diagnosis.violation_time == 150
        assert diagnosis.latency_seconds > 0
        assert not diagnosis.validated
        assert diagnosis.outcomes is None
        assert diagnosis.unvalidated is None

    def test_positional_violation_time_rejected(self):
        store = _flat_store()
        with pytest.raises(TypeError):
            FChain().localize(store, 150)

    def test_missing_violation_time_raises(self):
        with pytest.raises(TypeError, match="violation_time"):
            FChain().localize(_flat_store())

    def test_localize_and_validate_removed(self):
        assert not hasattr(FChain(), "localize_and_validate")

    def test_validate_with_validates_diagnosis(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        fchain = FChain(seed=101)
        diagnosis = fchain.localize(
            app.store, violation_time=violation, validate_with=app
        )
        assert diagnosis.validated
        assert diagnosis.outcomes is not None
        assert diagnosis.unvalidated is not None
        assert diagnosis.faulty <= diagnosis.unvalidated.faulty

    def test_diagnosis_proxies_pinpoint_result(self):
        store = _flat_store()
        diagnosis = FChain().localize(store, violation_time=150)
        result = diagnosis.result
        assert diagnosis.faulty == result.faulty
        assert diagnosis.external_factor == result.external_factor
        assert diagnosis.chain == result.chain
        assert diagnosis.reports == result.reports
        assert diagnosis.skipped == result.skipped
        assert diagnosis.summary().startswith(result.summary())

    def test_validation_note_in_summary(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        diagnosis = FChain(seed=101).localize(
            app.store, violation_time=violation, validate_with=app
        )
        assert "validation" in diagnosis.summary()


class TestLocalizerProtocol:
    class _Recorder(Localizer):
        name = "recorder"

        def __init__(self):
            self.seen = None

        def _localize(self, store, *, violation_time, context):
            self.seen = (store, violation_time, context)
            return frozenset({"x"})

    def test_keyword_call(self):
        scheme = self._Recorder()
        store = _flat_store()
        context = LocalizationContext()
        out = scheme.localize(store, violation_time=9, context=context)
        assert out == frozenset({"x"})
        assert scheme.seen == (store, 9, context)

    def test_default_context_constructed(self):
        scheme = self._Recorder()
        scheme.localize(_flat_store(), violation_time=9)
        assert isinstance(scheme.seen[2], LocalizationContext)

    def test_positional_call_rejected(self):
        scheme = self._Recorder()
        store = _flat_store()
        with pytest.raises(TypeError):
            scheme.localize(store, 9, LocalizationContext())

    def test_missing_violation_time_raises(self):
        with pytest.raises(TypeError, match="violation_time"):
            self._Recorder().localize(_flat_store())

    def test_baselines_keyword_only(self, rubis_cpuhog_run):
        from repro.baselines import PALLocalizer

        app, violation = rubis_cpuhog_run
        context = LocalizationContext()
        scheme = PALLocalizer()
        modern = scheme.localize(
            app.store, violation_time=violation, context=context
        )
        assert isinstance(modern, frozenset)
        with pytest.raises(TypeError):
            scheme.localize(app.store, violation, context)


class TestConfigValidate:
    def test_default_config_valid(self):
        config = FChainConfig()
        assert config.validate() is config

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"look_back_window": 8}, "look_back_window"),
            ({"min_segment": 1}, "min_segment"),
            ({"analysis_grace": -1}, "analysis_grace"),
            ({"cusum_bootstraps": 0}, "cusum_bootstraps"),
            ({"validation_horizon": -5}, "validation_horizon"),
        ],
    )
    def test_rejects_nonsense(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            FChainConfig(**kwargs).validate()

    def test_engine_constructors_validate(self):
        bad = FChainConfig(look_back_window=8)
        with pytest.raises(ConfigurationError):
            FChainSlave(bad)
        with pytest.raises(ConfigurationError):
            FChainMaster(bad)
        with pytest.raises(ConfigurationError):
            FChain(bad)


class TestStreamingFacade:
    def test_observe_feeds_persistent_slave(self):
        fchain = FChain()
        for t in range(120):
            fchain.observe("c", Metric.CPU_USAGE, 30.0 + (t % 3))
        model = fchain.master.slave.model_for("c", Metric.CPU_USAGE)
        assert model is not None and model.ready

    def test_observe_many_matches_observe(self):
        values = [30.0 + (t % 5) for t in range(150)]
        one = FChain()
        for v in values:
            one.observe("c", Metric.CPU_USAGE, v)
        many = FChain()
        many.observe_many("c", Metric.CPU_USAGE, values)
        np.testing.assert_array_equal(
            many.master.slave._streams[("c", Metric.CPU_USAGE)].view(),
            one.master.slave._streams[("c", Metric.CPU_USAGE)].view(),
        )

    def test_replay_engine_rejects_observe(self):
        from repro.common.errors import DiagnosisError

        fchain = FChain(incremental=False)
        with pytest.raises(DiagnosisError, match="incremental"):
            fchain.observe("c", Metric.CPU_USAGE, 1.0)
