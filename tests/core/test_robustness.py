"""Robustness tests: degenerate inputs the pipeline must survive.

Production diagnosis code sees ugly data — components with dead-flat
metrics, violations right at the edge of recorded history, look-back
windows larger than everything recorded. None of these may crash the
pipeline or produce nonsensical output.
"""

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.types import METRIC_NAMES, Metric
from repro.core.config import FChainConfig
from repro.core.dependency import load_graph, save_graph
from repro.core.fchain import FChain, FChainSlave
from repro.monitoring.store import MetricStore


def make_store(length=400, components=("a", "b"), seed=0):
    rng = spawn_rng("robust", seed)
    data = {}
    for name in components:
        data[name] = {
            metric: 30 + rng.normal(0, 2, length) for metric in METRIC_NAMES
        }
    return MetricStore.from_arrays(data)


class TestDegenerateStores:
    def test_constant_zero_metrics(self):
        store = MetricStore.from_arrays(
            {"dead": {m: np.zeros(400) for m in METRIC_NAMES}}
        )
        report = FChainSlave().analyze(store, "dead", 390)
        assert not report.is_abnormal

    def test_single_metric_component(self):
        store = MetricStore.from_arrays(
            {"one": {Metric.CPU_USAGE: np.full(400, 30.0)}}
        )
        report = FChainSlave().analyze(store, "one", 390)
        assert report.abnormal_changes == []

    def test_violation_at_history_edge(self):
        store = make_store(length=400)
        result = FChain().localize(store, violation_time=399)
        assert isinstance(result.faulty, frozenset)

    def test_violation_early_in_history(self):
        """t_v barely past warmup: no model, no crash, no findings."""
        store = make_store(length=50)
        result = FChain().localize(store, violation_time=30)
        assert result.faulty == frozenset()

    def test_window_larger_than_history(self):
        store = make_store(length=200)
        config = FChainConfig(look_back_window=500)
        result = FChain(config).localize(store, violation_time=190)
        assert isinstance(result.faulty, frozenset)

    def test_no_warmup_data_at_all(self):
        store = make_store(length=12)
        result = FChain().localize(store, violation_time=11)
        assert result.faulty == frozenset()

    def test_nan_free_output_on_spiky_data(self):
        rng = spawn_rng("spiky")
        values = 10 + rng.normal(0, 1, 400)
        values[::20] *= 8
        store = MetricStore.from_arrays(
            {"s": {m: values.copy() for m in METRIC_NAMES}}
        )
        report = FChainSlave().analyze(store, "s", 390)
        for change in report.abnormal_changes:
            assert np.isfinite(change.prediction_error)
            assert np.isfinite(change.expected_error)


class TestGraphPersistence:
    def test_round_trip(self, tmp_path, rubis_dependency_graph):
        path = tmp_path / "deps.json"
        save_graph(rubis_dependency_graph, path)
        loaded = load_graph(path)
        assert set(loaded.edges) == set(rubis_dependency_graph.edges)
        assert set(loaded.nodes) == set(rubis_dependency_graph.nodes)

    def test_empty_graph_round_trip(self, tmp_path):
        import networkx as nx

        path = tmp_path / "empty.json"
        save_graph(nx.DiGraph(), path)
        assert load_graph(path).number_of_edges() == 0

    def test_loaded_graph_usable_for_diagnosis(
        self, tmp_path, rubis_cpuhog_run, rubis_dependency_graph
    ):
        app, violation = rubis_cpuhog_run
        path = tmp_path / "deps.json"
        save_graph(rubis_dependency_graph, path)
        fchain = FChain(dependency_graph=load_graph(path), seed=101)
        assert "db" in fchain.localize(app.store, violation_time=violation).faulty
