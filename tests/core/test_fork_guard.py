"""Fork-availability guards for the process executor and fleet backend.

On platforms without the ``fork`` start method (Windows, some macOS
configurations) forked workers cannot inherit attached shared-memory
segments, so the process paths must refuse or degrade loudly rather
than crash mid-diagnosis: :class:`SlavePool` warns and falls back to
threads, :class:`FleetConfig` rejects the backend outright at
validation time.
"""

import warnings

import pytest

from repro.common.errors import ConfigurationError
from repro.core import engine
from repro.core.config import FChainConfig
from repro.core.engine import SlavePool
from repro.core.fchain import FChainSlave
from repro.fleet import supervisor as fleet_supervisor
from repro.fleet.supervisor import FleetConfig


def _slave():
    return FChainSlave(FChainConfig(cusum_bootstraps=40), seed=1)


class TestSlavePoolFallback:
    def test_warns_and_falls_back_to_thread(self, monkeypatch):
        monkeypatch.setattr(engine, "fork_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="fork"):
            pool = SlavePool(_slave(), jobs=2, executor="process")
        assert pool.executor == "thread"
        pool.close()

    def test_no_warning_when_fork_exists(self, monkeypatch):
        monkeypatch.setattr(engine, "fork_available", lambda: True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pool = SlavePool(_slave(), jobs=2, executor="process")
        assert pool.executor == "process"
        pool.close()

    def test_thread_executor_is_untouched(self, monkeypatch):
        monkeypatch.setattr(engine, "fork_available", lambda: False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pool = SlavePool(_slave(), jobs=2, executor="thread")
        assert pool.executor == "thread"
        pool.close()


class TestFleetBackendGuard:
    def test_process_backend_rejected_without_fork(self, monkeypatch):
        monkeypatch.setattr(
            fleet_supervisor, "fork_available", lambda: False
        )
        with pytest.raises(ConfigurationError, match="fork"):
            FleetConfig(backend="process").validate()

    def test_thread_backend_survives_without_fork(self, monkeypatch):
        monkeypatch.setattr(
            fleet_supervisor, "fork_available", lambda: False
        )
        FleetConfig(backend="thread").validate()
