"""Tests for the FChain facade (slave, master, one-call API)."""

import pytest

from repro.apps.rubis import DB
from repro.common.errors import DiagnosisError
from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.fchain import FChain, FChainMaster, FChainSlave
from repro.monitoring.store import MetricStore


class TestSlaveStreaming:
    def test_observe_builds_models(self):
        slave = FChainSlave()
        for t in range(100):
            slave.observe("web", Metric.CPU_USAGE, 30.0 + (t % 3))
        model = slave.model_for("web", Metric.CPU_USAGE)
        assert model is not None
        assert model.ready

    def test_unknown_model_none(self):
        assert FChainSlave().model_for("x", Metric.CPU_USAGE) is None


class TestSlaveAnalysis:
    def test_detects_faulty_component(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        slave = FChainSlave(FChainConfig(), seed=101)
        report = slave.analyze(app.store, DB, violation)
        assert report.is_abnormal
        assert report.onset_time <= violation

    def test_normal_component_clean_or_later(self, rubis_cpuhog_run):
        app, violation = rubis_cpuhog_run
        slave = FChainSlave(FChainConfig(), seed=101)
        db_onset = slave.analyze(app.store, DB, violation).onset_time
        web = slave.analyze(app.store, "web", violation)
        if web.is_abnormal:
            assert web.onset_time >= db_onset


class TestMaster:
    def test_diagnose_pinpoints_db(
        self, rubis_cpuhog_run, rubis_dependency_graph
    ):
        app, violation = rubis_cpuhog_run
        master = FChainMaster(
            FChainConfig(), rubis_dependency_graph, seed=101
        )
        result = master.diagnose(app.store, violation)
        assert result.faulty == frozenset({DB})

    def test_violation_before_history_rejected(self):
        master = FChainMaster()
        with pytest.raises(DiagnosisError):
            master.diagnose(MetricStore(start=100), 50)


class TestFacade:
    def test_localize(self, rubis_cpuhog_run, rubis_dependency_graph):
        app, violation = rubis_cpuhog_run
        fchain = FChain(dependency_graph=rubis_dependency_graph, seed=101)
        result = fchain.localize(app.store, violation_time=violation)
        assert DB in result.faulty

    def test_validate_with(self, rubis_cpuhog_run, rubis_dependency_graph):
        app, violation = rubis_cpuhog_run
        fchain = FChain(dependency_graph=rubis_dependency_graph, seed=101)
        diagnosis = fchain.localize(
            app.store, violation_time=violation, validate_with=app
        )
        assert DB in diagnosis.faulty
        assert diagnosis.outcomes[DB].confirmed

    def test_default_config(self):
        fchain = FChain()
        assert fchain.config.look_back_window == 100
        assert fchain.dependency_graph is None
