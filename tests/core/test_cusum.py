"""Tests for CUSUM + bootstrap change point detection."""

import numpy as np
import pytest

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.core.cusum import detect_change_points


def series(values, start=0):
    return TimeSeries(np.asarray(values, dtype=float), start=start)


class TestDetection:
    def test_clean_step_found(self):
        values = [10.0] * 50 + [20.0] * 50
        points = detect_change_points(series(values), seed=1)
        assert any(abs(p.time - 50) <= 2 for p in points)

    def test_step_direction_and_magnitude(self):
        values = [10.0] * 50 + [20.0] * 50
        points = detect_change_points(series(values), seed=1)
        main = max(points, key=lambda p: p.magnitude)
        assert main.direction == 1
        assert main.magnitude == pytest.approx(10.0, rel=0.2)

    def test_downward_step(self):
        values = [20.0] * 50 + [5.0] * 50
        points = detect_change_points(series(values), seed=1)
        main = max(points, key=lambda p: p.magnitude)
        assert main.direction == -1

    def test_no_change_in_flat_series(self):
        values = [7.0] * 100
        assert detect_change_points(series(values), seed=1) == []

    def test_pure_noise_rarely_fires(self):
        rng = spawn_rng("noise")
        fired = 0
        for i in range(10):
            values = rng.normal(10, 1, 80)
            fired += len(detect_change_points(series(values), seed=i))
        assert fired <= 6  # occasional false alarms are expected, not many

    def test_multiple_steps(self):
        values = [10.0] * 40 + [20.0] * 40 + [5.0] * 40
        points = detect_change_points(series(values), seed=2)
        times = [p.time for p in points]
        assert any(abs(t - 40) <= 3 for t in times)
        assert any(abs(t - 80) <= 3 for t in times)

    def test_fluctuating_series_many_points(self):
        """The paper's Fig. 3 premise: dynamic metrics yield many points."""
        rng = spawn_rng("fig3")
        t = np.arange(300)
        values = 50 + 20 * np.sin(t / 15) + rng.normal(0, 6, 300)
        values[::37] *= 2.0  # spiky texture
        points = detect_change_points(series(values), seed=3)
        assert len(points) >= 4

    def test_times_absolute(self):
        values = [1.0] * 30 + [9.0] * 30
        points = detect_change_points(series(values, start=500), seed=1)
        assert all(p.time >= 500 for p in points)
        assert any(abs(p.time - 530) <= 2 for p in points)

    def test_min_segment_respected(self):
        values = [1.0] * 30 + [9.0] * 30
        points = detect_change_points(series(values), min_segment=8, seed=1)
        for p in points:
            assert 8 <= p.index <= len(values) - 8

    def test_sorted_by_time(self):
        values = [10.0] * 40 + [20.0] * 40 + [5.0] * 40
        points = detect_change_points(series(values), seed=2)
        times = [p.time for p in points]
        assert times == sorted(times)

    def test_short_series_no_points(self):
        assert detect_change_points(series([1.0, 2.0, 3.0]), seed=1) == []

    def test_deterministic_given_seed(self):
        rng = spawn_rng("det")
        values = rng.normal(10, 2, 120)
        values[60:] += 8
        a = detect_change_points(series(values), seed="s")
        b = detect_change_points(series(values), seed="s")
        assert a == b

    def test_confidence_at_least_requested(self):
        values = [10.0] * 50 + [20.0] * 50
        points = detect_change_points(series(values), confidence=0.95, seed=1)
        assert all(p.confidence >= 0.95 for p in points)
