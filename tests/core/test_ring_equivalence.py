"""Bit-identity of diagnosis on ring-wrapped stores, across executors.

The PR-4 invariant — analysis on contiguous data is bit-identical
regardless of executor — must survive retention-by-overwrite. These
tests build stores whose rings have wrapped at least once and assert:

* serial, thread-pool and process-pool masters produce identical
  diagnoses on the same wrapped store (the process path exercises the
  flat-ring shared-memory snapshot of a wrapped ring);
* a slave that keeps continuously synced while the ring wraps holds the
  same prediction-error streams as one that read the full history from
  an unbounded store — eviction only removes what was already consumed.
"""

import numpy as np

from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.fchain import FChainMaster, FChainSlave
from repro.monitoring.store import IngestBatch, IngestRun, MetricStore

#: Cheap bootstraps: executor equivalence does not need tight intervals.
THREAD_CONFIG = FChainConfig(cusum_bootstraps=40, executor="thread")
PROCESS_CONFIG = FChainConfig(cusum_bootstraps=40, executor="process")

RETENTION = 512
SAMPLES = 1_200  # > 2x retention: every ring has fully wrapped


def _series_data(components=4, samples=SAMPLES, seed=11):
    rng = np.random.default_rng(seed)
    data = {}
    for i in range(components):
        cpu = 30 + rng.normal(0, 1.5, samples)
        mem = 55 + rng.normal(0, 1.0, samples)
        if i == 1:  # one component ramps into a fault near the end
            cpu[-60:] += np.linspace(0, 40, 60)
        data[f"comp-{i}"] = {
            Metric.CPU_USAGE: cpu,
            Metric.MEMORY_USAGE: mem,
        }
    return data


def _wrapped_store(retention=RETENTION):
    return MetricStore.from_arrays(_series_data(), retention=retention)


def _result_key(result):
    return (result.faulty, result.chain.links, result.external_factor)


class TestExecutorIdentity:
    def test_serial_thread_process_identical_on_wrapped_store(self):
        store = _wrapped_store()
        violation = store.end - 5

        serial = FChainMaster(
            THREAD_CONFIG, seed=3, incremental=True
        ).diagnose(store, violation)
        threaded = FChainMaster(
            THREAD_CONFIG, seed=3, jobs=3, incremental=True
        ).diagnose(store, violation)
        procs = FChainMaster(
            PROCESS_CONFIG, seed=3, jobs=2, incremental=True
        ).diagnose(store, violation)

        assert _result_key(serial) == _result_key(threaded)
        assert _result_key(serial) == _result_key(procs)
        # The fault lies entirely inside the retained window, so the
        # wrap must not cost the diagnosis its culprit.
        assert "comp-1" in serial.faulty

    def test_wrap_depth_does_not_perturb_the_diagnosis(self):
        # Two retentions, both covering the analysis window: the ring
        # geometry (how often it wrapped) must be invisible to analysis.
        shallow = _wrapped_store(retention=1_024)
        deep = _wrapped_store(retention=256)
        violation = shallow.end - 5
        left = FChainMaster(THREAD_CONFIG, seed=3, incremental=True).diagnose(
            shallow, violation
        )
        right = FChainMaster(THREAD_CONFIG, seed=3, incremental=True).diagnose(
            deep, violation
        )
        assert _result_key(left) == _result_key(right)


class TestContinuousSyncIdentity:
    def test_synced_slave_matches_full_history_streams(self):
        data = _series_data()
        full_store = MetricStore.from_arrays(data)

        wrapped = MetricStore(retention=256)
        synced = FChainSlave(THREAD_CONFIG, seed=3)
        chunk = 100  # < retention: the slave never falls behind eviction
        for lo in range(0, SAMPLES, chunk):
            hi = min(lo + chunk, SAMPLES)
            wrapped.ingest(
                IngestBatch(
                    runs=[
                        IngestRun(comp, metric, lo, values[lo:hi])
                        for comp, metrics in data.items()
                        for metric, values in metrics.items()
                    ],
                    watermark=hi,
                )
            )
            synced.sync_with_store(wrapped, wrapped.end)

        cold = FChainSlave(THREAD_CONFIG, seed=3)
        cold.sync_with_store(full_store, full_store.end)

        assert set(synced._streams) == set(cold._streams)
        for key, stream in synced._streams.items():
            np.testing.assert_array_equal(
                stream.view(), cold._streams[key].view(), err_msg=str(key)
            )
