"""Tests for the process-based SlavePool executor.

The acceptance bar is exact: for any store and violation, the process
executor must return the *same reports in the same order* as the thread
executor (and the serial path), with identical timeout/``skipped``
semantics. Equivalence holds because a worker's fresh slave replays the
shared-memory history through ``update_many``, whose chunk invariance
makes the replay bit-identical to the master's warm slave.
"""

import time

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import Metric
from repro.core import engine
from repro.core.config import FChainConfig
from repro.core.engine import SlavePool, _process_analyze
from repro.core.fchain import FChain, FChainSlave
from repro.monitoring.store import MetricStore

#: Cheap bootstraps: executor equivalence does not need tight intervals.
CONFIG = FChainConfig(cusum_bootstraps=40)


def _faulty_store(components=4, samples=400, seed=5):
    rng = np.random.default_rng(seed)
    data = {}
    for i in range(components):
        cpu = 30 + rng.normal(0, 1.5, samples)
        mem = 55 + rng.normal(0, 1.0, samples)
        if i == 1:  # one component ramps into a fault near the end
            cpu[-80:] += np.linspace(0, 40, 80)
        data[f"comp-{i}"] = {
            Metric.CPU_USAGE: cpu,
            Metric.MEMORY_USAGE: mem,
        }
    return MetricStore.from_arrays(data)


def _report_key(reports, timed_out):
    return ([(r.component, r.skipped, r.abnormal_changes) for r in reports],
            timed_out)


class TestEquivalence:
    def test_reports_identical_to_thread_executor(self):
        store = _faulty_store()
        violation = store.end - 5

        thread_pool = SlavePool(
            FChainSlave(CONFIG, seed=3), jobs=3, executor="thread"
        )
        process_pool = SlavePool(
            FChainSlave(CONFIG, seed=3), jobs=3, executor="process"
        )
        try:
            expected = _report_key(*thread_pool.analyze_all(store, violation))
            actual = _report_key(*process_pool.analyze_all(store, violation))
            assert actual == expected
        finally:
            process_pool.close()

    def test_warm_pool_reused_across_diagnoses(self):
        store = _faulty_store()
        thread_pool = SlavePool(
            FChainSlave(CONFIG, seed=3), jobs=3, executor="thread"
        )
        process_pool = SlavePool(
            FChainSlave(CONFIG, seed=3), jobs=3, executor="process"
        )
        try:
            for violation in (store.end - 40, store.end - 5):
                expected = _report_key(
                    *thread_pool.analyze_all(store, violation)
                )
                actual = _report_key(
                    *process_pool.analyze_all(store, violation)
                )
                assert actual == expected
            assert process_pool._pool is not None  # cached, not re-forked
        finally:
            process_pool.close()
            assert process_pool._pool is None

    def test_fchain_facade_identical_diagnoses(self):
        from dataclasses import replace

        store = _faulty_store()
        violation = store.end - 5
        with FChain(CONFIG, seed=2, jobs=3) as threaded:
            expected = threaded.localize(store, violation_time=violation)
        with FChain(
            replace(CONFIG, executor="process"), seed=2, jobs=3
        ) as processed:
            actual = processed.localize(store, violation_time=violation)
        assert actual.result.faulty == expected.result.faulty
        assert actual.result.chain.links == expected.result.chain.links
        assert actual.result.skipped == expected.result.skipped
        assert actual.result.external_factor == expected.result.external_factor


def _wedged_analyze(handle, config, seed, component, violation_time):
    """Module-level (hence picklable) wedge for the timeout test."""
    if component == "comp-0":
        time.sleep(5.0)
    return _process_analyze(handle, config, seed, component, violation_time)


class TestTimeout:
    def test_timeout_marks_component_skipped(self, monkeypatch):
        monkeypatch.setattr(engine, "_process_analyze", _wedged_analyze)
        store = _faulty_store()
        pool = SlavePool(
            FChainSlave(CONFIG, seed=1), jobs=2, timeout=0.5,
            executor="process",
        )
        reports, timed_out = pool.analyze_all(store, store.end - 5)
        assert timed_out == frozenset({"comp-0"})
        by_component = {r.component: r for r in reports}
        assert by_component["comp-0"].skipped
        assert [r.component for r in reports] == store.components
        # The wedged pool was discarded so it cannot poison later calls.
        assert pool._pool is None


class TestConfiguration:
    def test_config_rejects_unknown_executor(self):
        with pytest.raises(ConfigurationError, match="executor"):
            FChainConfig(executor="greenlet")

    def test_pool_rejects_unknown_executor(self):
        with pytest.raises(ConfigurationError, match="executor"):
            SlavePool(FChainSlave(CONFIG), executor="fiber")

    def test_pool_defaults_to_config_executor(self):
        from dataclasses import replace

        pool = SlavePool(FChainSlave(replace(CONFIG, executor="process")))
        assert pool.executor == "process"
        assert SlavePool(FChainSlave(CONFIG)).executor == "thread"
