"""Tests for integrated faulty component pinpointing."""

import networkx as nx

from repro.common.types import Metric
from repro.core.config import FChainConfig
from repro.core.cusum import ChangePoint
from repro.core.pinpoint import pinpoint_faulty_components
from repro.core.propagation import ComponentReport
from repro.core.selection import AbnormalChange


def change(onset, direction=1, metric=Metric.CPU_USAGE):
    point = ChangePoint(onset, onset, 1.0, 10.0, direction)
    return AbnormalChange(
        metric=metric,
        change_point=point,
        onset_time=onset,
        prediction_error=5.0,
        expected_error=1.0,
        direction=direction,
    )


def report(name, *onsets, direction=1):
    return ComponentReport(
        name, [change(onset, direction) for onset in onsets]
    )


def rubis_graph():
    g = nx.DiGraph()
    g.add_edges_from(
        [("web", "app1"), ("web", "app2"), ("app1", "db"), ("app2", "db")]
    )
    return g


CONFIG = FChainConfig()


class TestWeightedPruning:
    def weighted_graph(self, weight):
        g = nx.DiGraph()
        g.add_edge("web", "app1", weight=0.9)
        g.add_edge("app1", "db", weight=weight)
        return g

    def test_confident_path_explains_propagation(self):
        reports = [
            report("db", 100),
            report("web", 130),
            ComponentReport("app1"),
        ]
        config = FChainConfig(topology_min_path_confidence=0.5)
        result = pinpoint_faulty_components(
            reports, config, self.weighted_graph(0.9)
        )
        # Back-pressure path db -> app1 -> web at 0.81 confidence: the
        # later web anomaly is a victim, not a second fault.
        assert result.faulty == frozenset({"db"})

    def test_decayed_path_stops_explaining(self):
        reports = [
            report("db", 100),
            report("web", 130),
            ComponentReport("app1"),
        ]
        config = FChainConfig(topology_min_path_confidence=0.5)
        result = pinpoint_faulty_components(
            reports, config, self.weighted_graph(0.1)
        )
        # Same shape, but the learned app1 -> db edge has decayed to
        # 0.1: the propagation explanation no longer holds and web is
        # pinpointed as an independent fault.
        assert result.faulty == frozenset({"db", "web"})

    def test_zero_threshold_ignores_weights(self):
        reports = [
            report("db", 100),
            report("web", 130),
            ComponentReport("app1"),
        ]
        result = pinpoint_faulty_components(
            reports, CONFIG, self.weighted_graph(0.1)
        )
        # The default config prunes on reachability alone — weighted
        # pruning is strictly opt-in.
        assert result.faulty == frozenset({"db"})


class TestBasicPinpointing:
    def test_chain_source_pinpointed(self):
        reports = [
            report("db", 100),
            report("app1", 120),
            ComponentReport("app2"),
            ComponentReport("web"),
        ]
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert result.faulty == frozenset({"db"})

    def test_nothing_abnormal_empty(self):
        reports = [ComponentReport("a"), ComponentReport("b")]
        result = pinpoint_faulty_components(reports, CONFIG)
        assert result.faulty == frozenset()
        assert not result.external_factor

    def test_concurrent_faults_within_threshold(self):
        reports = [
            report("app1", 100),
            report("app2", 101),
            ComponentReport("web"),
            ComponentReport("db"),
        ]
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert result.faulty == frozenset({"app1", "app2"})

    def test_propagation_explained_by_reverse_path(self):
        """Back-pressure: db fault, web abnormal later -> only db blamed."""
        reports = [
            report("db", 100),
            report("web", 130),
            report("app1", 125),
            ComponentReport("app2"),
        ]
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert result.faulty == frozenset({"db"})

    def test_spurious_propagation_rejected(self):
        """Fig. 5: app1 -> app2 has no dependency path, so app2 is an
        independent fault."""
        reports = [
            report("app1", 100),
            report("app2", 130),
            ComponentReport("web"),
            ComponentReport("db"),
        ]
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert result.faulty == frozenset({"app1", "app2"})

    def test_no_dependency_graph_propagation_only(self):
        """Without dependencies FChain still pinpoints via the chain."""
        reports = [report("PE3", 100), report("PE6", 120), report("PE2", 140)]
        result = pinpoint_faulty_components(reports, CONFIG, None)
        assert result.faulty == frozenset({"PE3"})

    def test_empty_graph_same_as_none(self):
        reports = [report("a", 100), report("b", 150)]
        result = pinpoint_faulty_components(reports, CONFIG, nx.DiGraph())
        assert result.faulty == frozenset({"a"})


class TestConcurrencyThreshold:
    def test_threshold_boundary_inclusive(self):
        config = FChainConfig(concurrency_threshold=2.0)
        reports = [report("a", 100), report("b", 102), ComponentReport("idle")]
        result = pinpoint_faulty_components(reports, config)
        assert result.faulty == frozenset({"a", "b"})

    def test_larger_threshold_absorbs_more(self):
        config = FChainConfig(concurrency_threshold=10.0)
        reports = [
            report("a", 100),
            report("b", 108),
            report("c", 115),
            ComponentReport("idle"),
        ]
        result = pinpoint_faulty_components(reports, config)
        assert result.faulty == frozenset({"a", "b", "c"})

    def test_distance_measured_to_any_pinpointed(self):
        reports = [
            report("a", 100),
            report("b", 102),
            report("c", 104),
            ComponentReport("idle"),
        ]
        result = pinpoint_faulty_components(reports, CONFIG)
        # c is 4s from a but 2s from b, which is itself faulty.
        assert result.faulty == frozenset({"a", "b", "c"})


class TestExternalFactor:
    def _all_up(self, spread=0):
        return [
            report("web", 100, direction=1),
            report("app1", 100 + spread, direction=1),
            report("app2", 100, direction=1),
            report("db", 100, direction=1),
        ]

    def test_simultaneous_common_trend_is_external(self):
        result = pinpoint_faulty_components(
            self._all_up(), CONFIG, rubis_graph()
        )
        assert result.external_factor
        assert result.faulty == frozenset()

    def test_spread_onsets_not_external(self):
        result = pinpoint_faulty_components(
            self._all_up(spread=40), CONFIG, rubis_graph()
        )
        assert not result.external_factor
        assert result.faulty

    def test_mixed_trends_not_external(self):
        reports = [
            report("web", 100, direction=1),
            report("app1", 100, direction=-1),
            report("app2", 100, direction=1),
            report("db", 100, direction=-1),
        ]
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert not result.external_factor

    def test_clustered_minority_trend_still_external(self):
        """A simultaneous opposite-direction change on one component (a
        metric that reacts inversely to the shared shift) must not mask
        the external factor, as long as its onset is clustered too."""
        reports = self._all_up()
        reports[3] = report("db", 101, direction=-1)
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert result.external_factor

    def test_early_minority_onset_blocks_external(self):
        """A component manifesting well before the collective shift is a
        culprit candidate, not part of an external factor."""
        reports = self._all_up()
        reports[3] = report("db", 60, direction=-1)
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert not result.external_factor
        assert "db" in result.faulty

    def test_partial_coverage_not_external(self):
        reports = self._all_up()[:3] + [ComponentReport("db")]
        result = pinpoint_faulty_components(reports, CONFIG, rubis_graph())
        assert not result.external_factor


class TestResultAccessors:
    def test_implicated_metrics(self):
        reports = [report("db", 100)]
        result = pinpoint_faulty_components(reports, CONFIG)
        assert result.implicated_metrics("db") == [Metric.CPU_USAGE]
        assert result.implicated_metrics("ghost") == []

    def test_chain_exposed(self):
        reports = [report("a", 100), report("b", 150)]
        result = pinpoint_faulty_components(reports, CONFIG)
        assert result.chain.components == ["a", "b"]
