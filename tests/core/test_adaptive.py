"""Tests for the adaptive extensions (paper's stated future work)."""

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.common.types import Metric
from repro.core.adaptive import (
    adaptive_config,
    adaptive_look_back_window,
    adaptive_smoothing_window,
)
from repro.core.config import FChainConfig
from repro.monitoring.store import MetricStore


def store_with(cpu_values):
    return MetricStore.from_arrays({"c": {Metric.CPU_USAGE: cpu_values}})


class TestAdaptiveWindow:
    def test_fast_fault_keeps_base_window(self):
        rng = spawn_rng("aw1")
        values = 30 + rng.normal(0, 1, 1000)
        values[950:] = 90  # sharp step well inside W=100
        store = store_with(values)
        assert adaptive_look_back_window(store, 990) == 100

    def test_slow_manifestation_grows_window(self):
        rng = spawn_rng("aw2")
        values = 30 + rng.normal(0, 1, 1000)
        # Ramp starting 400 s before the violation: W=100's head is still
        # climbing, so the window must grow to cover the onset.
        values[590:] += np.linspace(0, 200, 410)
        store = store_with(values)
        window = adaptive_look_back_window(store, 990, max_window=600)
        assert window >= 400

    def test_respects_max_window(self):
        values = np.linspace(0, 500, 1000)  # trending everywhere
        store = store_with(values)
        assert adaptive_look_back_window(store, 990, max_window=300) == 300

    def test_short_history_stops_growth(self):
        rng = spawn_rng("aw3")
        values = 30 + rng.normal(0, 1, 150)
        store = store_with(values)
        assert adaptive_look_back_window(store, 140) <= 200

    def test_adaptive_config_carries_window(self):
        rng = spawn_rng("aw4")
        values = 30 + rng.normal(0, 1, 1000)
        store = store_with(values)
        config = adaptive_config(store, 990, FChainConfig())
        assert isinstance(config, FChainConfig)
        assert config.look_back_window >= 100


class TestAdaptiveSmoothing:
    def test_quiet_series_minimal_smoothing(self):
        values = TimeSeries(np.linspace(100, 200, 120))
        assert adaptive_smoothing_window(values) <= 3

    def test_noisy_series_full_smoothing(self):
        rng = spawn_rng("as1")
        base = np.full(120, 50.0)
        noisy = TimeSeries(base + rng.normal(0, 25, 120))
        assert adaptive_smoothing_window(noisy) >= 7

    def test_window_is_odd_and_bounded(self):
        rng = spawn_rng("as2")
        for scale in (0.1, 1.0, 10.0, 100.0):
            series = TimeSeries(50 + rng.normal(0, scale, 120))
            window = adaptive_smoothing_window(series)
            assert 1 <= window <= 9
            assert window == 1 or window % 2 == 1

    def test_short_series(self):
        assert adaptive_smoothing_window(TimeSeries(np.zeros(3))) == 1
