"""Tests for the slave's continuous (streaming) modeling interface."""

import numpy as np

from repro.common.rng import spawn_rng
from repro.common.timeseries import TimeSeries
from repro.common.types import Metric
from repro.core.fchain import FChainSlave
from repro.core.prediction import prediction_errors


class TestStreamingParity:
    def test_streaming_model_matches_batch_errors(self):
        """Feeding samples via observe() produces the same error stream as
        the batch path used by diagnosis — the online slave and the
        analysis see the same model."""
        rng = spawn_rng("parity")
        values = 40 + rng.normal(0, 3, 500)
        slave = FChainSlave()
        for v in values:
            slave.observe("c", Metric.CPU_USAGE, float(v))
        streamed = np.asarray(slave._errors[("c", Metric.CPU_USAGE)])
        batch = prediction_errors(TimeSeries(values))
        mask = np.isfinite(batch)
        np.testing.assert_allclose(streamed[mask], batch[mask], rtol=1e-9)

    def test_models_independent_per_metric(self):
        slave = FChainSlave()
        for t in range(100):
            slave.observe("c", Metric.CPU_USAGE, 30.0)
            slave.observe("c", Metric.MEMORY_USAGE, 500.0)
        cpu = slave.model_for("c", Metric.CPU_USAGE)
        mem = slave.model_for("c", Metric.MEMORY_USAGE)
        assert cpu is not mem
        assert cpu.predict() != mem.predict()


class TestSummary:
    def test_summary_lists_chain_and_faulty(self, rubis_cpuhog_run):
        from repro.core import FChain

        app, violation = rubis_cpuhog_run
        result = FChain(seed=101).localize(app.store, violation_time=violation)
        text = result.summary()
        assert "db" in text
        assert "FAULTY" in text
        assert "pinpointed" in text

    def test_summary_external(self):
        from repro.core.pinpoint import PinpointResult
        from repro.core.propagation import PropagationChain

        result = PinpointResult(
            faulty=frozenset(),
            external_factor=True,
            chain=PropagationChain(links=()),
        )
        assert "external factor" in result.summary()

    def test_summary_nothing_found(self):
        from repro.core.pinpoint import PinpointResult
        from repro.core.propagation import PropagationChain

        result = PinpointResult(
            faulty=frozenset(),
            external_factor=False,
            chain=PropagationChain(links=()),
        )
        assert "no abnormal changes" in result.summary()
