"""EdgeServer over a real socket: routes, stats, and backpressure.

These tests replace the pipeline with a deliberately stalled stub so the
bounded queue's state is deterministic: nothing is consumed until the
test releases it, which makes the 429 shed path exactly reproducible.
"""

import threading
import time

import pytest

from repro.edge.client import EdgeClient
from repro.edge.server import EdgeConfig, EdgeServer, QueueFeed
from repro.edge.store import MemoryIncidentStore
from repro.obs.registry import MetricsRegistry


class FakeDiagnosis:
    def __init__(self, faulty):
        self.faulty = list(faulty)
        self.external_factor = False
        self.skipped = []
        self.confidence = "full"
        self.latency_seconds = 0.1
        self.violation_time = 50
        self.validated = True


class FakeIncident:
    def __init__(self, index, violation_tick, faulty=("db",)):
        self.index = index
        self.violation_tick = violation_tick
        self.diagnosis = FakeDiagnosis(faulty)

    def to_dict(self):
        return {
            "index": self.index,
            "violation_tick": self.violation_tick,
            "quality": "full",
            "faulty": sorted(self.diagnosis.faulty),
        }


class StalledPipeline:
    """Consumes nothing until released — freezes the queue for tests."""

    def __init__(self, feed):
        self.feed = feed
        self.release = threading.Event()
        self.ticks = 0
        self.triggered = 0
        self.dropped = 0
        self.warm_sync_skipped = 0
        self.incidents = []
        self.failures = []

    def run(self):
        self.release.wait()
        for _ in self.feed:
            self.ticks += 1


@pytest.fixture
def make_edge():
    made = []

    def factory(queue_depth=3, store=None, **config_kwargs):
        config_kwargs.setdefault("port", 0)
        config = EdgeConfig(queue_depth=queue_depth, **config_kwargs)
        # A private registry per server keeps counter assertions exact
        # regardless of what other tests in the process have counted.
        server = EdgeServer(
            config, incident_store=store, registry=MetricsRegistry()
        )
        feed = QueueFeed(queue_depth)
        pipeline = StalledPipeline(feed)
        server._feed = feed
        server.pipeline = pipeline
        server.start()
        client = EdgeClient("127.0.0.1", server.port, timeout=10.0)
        made.append((server, client, pipeline))
        return server, client, pipeline

    yield factory
    for server, client, pipeline in made:
        pipeline.release.set()
        client.close()
        server.close()


def tick_payload(t, value=0.5):
    return [
        {"component": "web", "metric": "cpu_usage", "time": t, "value": value}
    ]


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not reached in time"
        time.sleep(0.01)


class TestBackpressure:
    def test_flood_sheds_with_429_and_stays_responsive(self, make_edge):
        server, client, pipeline = make_edge(queue_depth=3)
        for t in range(3):
            assert client.push_json(tick_payload(t)).status == 202
        shed = client.push_json(tick_payload(3))
        assert shed.status == 429
        assert "retry-after" in shed.headers
        body = shed.json()
        assert body["accepted_batches"] == 0
        assert body["rejected_batches"] == 1
        assert body["retry_after_seconds"] == 1.0
        # The event loop never blocked on the full queue: health, stats
        # and metrics answer immediately mid-flood.
        assert client.healthz()
        stats = client.stats()
        assert stats["queue_depth"] == 3
        assert stats["queue_capacity"] == 3
        assert stats["shed_batches"] == 1
        assert stats["enqueued_batches"] == 3
        assert "fchain_edge_shed_batches_total 1" in client.metrics_text()

    def test_accepts_again_after_drain(self, make_edge):
        server, client, pipeline = make_edge(queue_depth=2)
        assert client.push_json(tick_payload(0)).status == 202
        assert client.push_json(tick_payload(1)).status == 202
        assert client.push_json(tick_payload(2)).status == 429
        pipeline.release.set()
        wait_until(lambda: client.stats()["queue_depth"] == 0)
        assert client.push_json(tick_payload(2)).status == 202

    def test_multi_tick_push_is_all_or_nothing(self, make_edge):
        server, client, pipeline = make_edge(queue_depth=4)
        three_ticks = [tick_payload(t)[0] for t in range(3)]
        assert client.push_json(three_ticks).status == 202
        # One slot is free; a 3-tick push must be shed whole, not split.
        more = [tick_payload(t)[0] for t in range(3, 6)]
        response = client.push_json(more)
        assert response.status == 429
        assert response.json()["accepted_batches"] == 0
        assert client.stats()["queue_depth"] == 3

    def test_push_larger_than_capacity_is_413(self, make_edge):
        server, client, pipeline = make_edge(queue_depth=2)
        oversized = [tick_payload(t)[0] for t in range(3)]
        assert client.push_json(oversized).status == 413

    def test_retrying_client_rides_out_the_flood(self, make_edge):
        server, client, pipeline = make_edge(queue_depth=1)
        assert client.push_json(tick_payload(0)).status == 202
        releaser = threading.Timer(0.2, pipeline.release.set)
        releaser.start()
        try:
            response = client.push_json_retrying(tick_payload(1))
        finally:
            releaser.cancel()
        assert response.status == 202
        assert server.shed_batches >= 1


class TestIngestValidation:
    def test_tenant_push_rejected_in_pipeline_mode(self, make_edge):
        server, client, pipeline = make_edge()
        response = client.push_json(tick_payload(0), tenant="acme")
        assert response.status == 400
        assert "fleet" in response.json()["error"]

    def test_bad_json_is_400(self, make_edge):
        server, client, pipeline = make_edge()
        response = client.request(
            "POST",
            "/v1/ingest",
            body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        assert response.status == 400

    def test_unknown_content_type_is_415(self, make_edge):
        server, client, pipeline = make_edge()
        response = client.request(
            "POST",
            "/v1/ingest",
            body=b"<xml/>",
            headers={"Content-Type": "application/xml"},
        )
        assert response.status == 415

    def test_oversized_body_is_413(self, make_edge):
        server, client, pipeline = make_edge(max_body_bytes=64)
        response = client.push_json(tick_payload(0) * 10)
        assert response.status == 413


class TestQuerySurface:
    def filled_store(self):
        store = MemoryIncidentStore()
        store.append(FakeIncident(0, 100), created_at=1.0)
        store.append(
            FakeIncident(1, 200, faulty=("web",)), tenant="acme", created_at=2.0
        )
        return store

    def test_incident_listing_and_filters(self, make_edge):
        server, client, pipeline = make_edge(store=self.filled_store())
        incidents = client.incidents()
        assert [i["id"] for i in incidents] == [2, 1]
        assert incidents[1]["faulty"] == ["db"]
        assert [i["id"] for i in client.incidents(tenant="acme")] == [2]
        assert [i["id"] for i in client.incidents(since=150)] == [2]
        assert [i["id"] for i in client.incidents(limit=1)] == [2]

    def test_incident_and_diagnosis_detail(self, make_edge):
        server, client, pipeline = make_edge(store=self.filled_store())
        record = client.incident(2)
        assert record["tenant"] == "acme"
        assert record["incident"]["violation_tick"] == 200
        diagnosis = client.diagnosis(2)
        assert diagnosis["diagnosis"]["faulty"] == ["web"]
        assert diagnosis["diagnosis"]["confidence"] == "full"

    def test_unknown_incident_is_404(self, make_edge):
        server, client, pipeline = make_edge(store=self.filled_store())
        assert client.request("GET", "/v1/incidents/99").status == 404
        assert client.request("GET", "/v1/incidents/abc").status == 400

    def test_bad_filter_is_400(self, make_edge):
        server, client, pipeline = make_edge(store=self.filled_store())
        assert client.request("GET", "/v1/incidents?since=soon").status == 400


class TestRoutingAndLifecycle:
    def test_unknown_route_is_404(self, make_edge):
        server, client, pipeline = make_edge()
        assert client.request("GET", "/nope").status == 404

    def test_wrong_method_is_405_with_allow(self, make_edge):
        server, client, pipeline = make_edge()
        response = client.request("DELETE", "/v1/ingest")
        assert response.status == 405
        assert response.headers.get("allow") == "POST"

    def test_health_and_ready(self, make_edge):
        server, client, pipeline = make_edge()
        assert client.healthz()
        assert client.readyz()

    def test_metrics_endpoint_renders_prometheus(self, make_edge):
        server, client, pipeline = make_edge()
        client.healthz()
        text = client.metrics_text()
        assert "fchain_edge_requests_total" in text

    def test_stats_reports_pipeline_mode(self, make_edge):
        server, client, pipeline = make_edge()
        stats = client.stats()
        assert stats["mode"] == "pipeline"
        assert stats["ready"] is True
        assert stats["store_backend"] == "memory"
        assert stats["pipeline"]["error"] is None

    def test_shutdown_endpoint(self, make_edge):
        server, client, pipeline = make_edge()
        assert client.shutdown().status == 202
        assert server._shutdown.is_set()

    def test_shutdown_endpoint_can_be_disabled(self, make_edge):
        server, client, pipeline = make_edge(allow_shutdown=False)
        assert client.shutdown().status == 404
        assert not server._shutdown.is_set()

    def test_keep_alive_connection_reused(self, make_edge):
        server, client, pipeline = make_edge()
        for _ in range(3):
            assert client.healthz()
        assert client.stats()["mode"] == "pipeline"
