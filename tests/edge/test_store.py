"""Incident store contract: identical behaviour across all backends."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.edge.store import (
    IncidentStoreSink,
    JsonlIncidentStore,
    MemoryIncidentStore,
    SqliteIncidentStore,
    StoredIncident,
    open_incident_store,
)


class FakeDiagnosis:
    def __init__(self, faulty, violation_time):
        self.faulty = list(faulty)
        self.external_factor = False
        self.skipped = []
        self.confidence = "full"
        self.latency_seconds = 0.5
        self.violation_time = violation_time
        self.validated = True


class FakeIncident:
    """Just enough of a service Incident for the store interface."""

    def __init__(self, index, violation_tick, faulty=("db",)):
        self.index = index
        self.violation_tick = violation_tick
        self.diagnosis = FakeDiagnosis(faulty, violation_tick)

    def to_dict(self):
        return {
            "index": self.index,
            "violation_tick": self.violation_tick,
            "quality": "full",
            "faulty": sorted(self.diagnosis.faulty),
        }


INCIDENTS = [
    ("", FakeIncident(0, 100)),
    ("acme", FakeIncident(1, 200, faulty=("web",))),
    ("acme", FakeIncident(2, 300)),
    ("globex", FakeIncident(3, 250)),
    ("", FakeIncident(4, 400, faulty=())),
]


def fill(store):
    for position, (tenant, incident) in enumerate(INCIDENTS):
        store.append(incident, tenant=tenant, created_at=1000.0 + position)
    return store


def make_store(backend, tmp_path):
    if backend == "memory":
        return MemoryIncidentStore()
    if backend == "jsonl":
        return JsonlIncidentStore(tmp_path / "segments")
    return SqliteIncidentStore(tmp_path / "incidents.db")


QUERIES = [
    {},
    {"tenant": "acme"},
    {"tenant": ""},
    {"tenant": "missing"},
    {"since": 250},
    {"until": 250},
    {"since": 200, "until": 300},
    {"tenant": "acme", "since": 250},
    {"limit": 2},
    {"since": 200, "limit": 1},
]


@pytest.mark.parametrize("backend", ["memory", "jsonl", "sqlite"])
class TestContract:
    """Every backend must answer identically to the memory reference."""

    def test_query_matches_memory_reference(self, backend, tmp_path):
        reference = fill(MemoryIncidentStore())
        store = fill(make_store(backend, tmp_path))
        for query in QUERIES:
            expected = [r.to_dict() for r in reference.query(**query)]
            actual = [r.to_dict() for r in store.query(**query)]
            assert actual == expected, f"query {query} diverged on {backend}"
        store.close()

    def test_ids_sequential_in_append_order(self, backend, tmp_path):
        store = fill(make_store(backend, tmp_path))
        assert [r.id for r in store.query()] == [5, 4, 3, 2, 1]
        assert store.count() == 5
        store.close()

    def test_get_by_id(self, backend, tmp_path):
        store = fill(make_store(backend, tmp_path))
        record = store.get(2)
        assert record is not None
        assert record.tenant == "acme"
        assert record.incident["violation_tick"] == 200
        assert record.diagnosis["faulty"] == ["web"]
        assert store.get(99) is None
        assert store.get(0) is None
        store.close()

    def test_diagnosis_payload_survives(self, backend, tmp_path):
        store = fill(make_store(backend, tmp_path))
        record = store.get(1)
        assert record.diagnosis["confidence"] == "full"
        assert record.diagnosis["violation_time"] == 100
        assert record.diagnosis["validated"] is True
        store.close()


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_durable_backends_survive_reopen(backend, tmp_path):
    store = fill(make_store(backend, tmp_path))
    store.close()
    reopened = make_store(backend, tmp_path)
    assert reopened.count() == 5
    assert [r.id for r in reopened.query()] == [5, 4, 3, 2, 1]
    assert reopened.get(3).incident["violation_tick"] == 300
    # Appends continue the id sequence after recovery.
    record = reopened.append(FakeIncident(5, 500), created_at=2000.0)
    assert record.id == 6
    reopened.close()


class TestJsonlCrashRecovery:
    def test_truncated_tail_dropped(self, tmp_path):
        store = fill(JsonlIncidentStore(tmp_path / "segments"))
        store.close()
        [segment] = store.segments()
        whole = segment.read_bytes()
        # Chop the last record mid-line: the crash-in-mid-append scar.
        segment.write_bytes(whole[: whole.rfind(b'{"id":5') + 20])
        recovered = JsonlIncidentStore(tmp_path / "segments")
        assert recovered.count() == 4
        assert [r.id for r in recovered.query()] == [4, 3, 2, 1]
        # The next append reuses the torn record's id.
        assert recovered.append(FakeIncident(9, 900)).id == 5
        recovered.close()

    def test_mid_file_corruption_refuses_to_open(self, tmp_path):
        store = fill(JsonlIncidentStore(tmp_path / "segments"))
        store.close()
        [segment] = store.segments()
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"id": broken\n'
        segment.write_bytes(b"".join(lines))
        with pytest.raises(ValueError, match="corrupt"):
            JsonlIncidentStore(tmp_path / "segments")

    def test_segment_rotation(self, tmp_path):
        store = JsonlIncidentStore(tmp_path / "segments", segment_bytes=256)
        for index in range(12):
            store.append(FakeIncident(index, index * 10), created_at=0.0)
        assert len(store.segments()) > 1
        store.close()
        recovered = JsonlIncidentStore(tmp_path / "segments", segment_bytes=256)
        assert recovered.count() == 12
        assert recovered.append(FakeIncident(12, 120)).id == 13
        recovered.close()

    def test_append_after_close_raises(self, tmp_path):
        store = JsonlIncidentStore(tmp_path / "segments")
        store.close()
        with pytest.raises(ConfigurationError):
            store.append(FakeIncident(0, 0))

    def test_segment_lines_are_valid_json(self, tmp_path):
        store = fill(JsonlIncidentStore(tmp_path / "segments"))
        store.close()
        [segment] = store.segments()
        payloads = [
            json.loads(line)
            for line in segment.read_text().splitlines()
            if line
        ]
        assert [p["id"] for p in payloads] == [1, 2, 3, 4, 5]
        assert all(
            set(p) == {"id", "tenant", "created_at", "incident", "diagnosis"}
            for p in payloads
        )


class TestOpenIncidentStore:
    def test_backend_dispatch(self, tmp_path):
        assert open_incident_store("memory").backend == "memory"
        jsonl = open_incident_store("jsonl", tmp_path / "segments")
        assert jsonl.backend == "jsonl"
        jsonl.close()
        sqlite = open_incident_store("sqlite", tmp_path / "db")
        assert sqlite.backend == "sqlite"
        sqlite.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            open_incident_store("postgres")

    def test_durable_backend_needs_path(self):
        with pytest.raises(ConfigurationError):
            open_incident_store("jsonl")


class TestSink:
    def test_pipeline_and_fleet_shapes(self):
        store = MemoryIncidentStore()
        sink = IncidentStoreSink(store)
        sink(FakeIncident(0, 10))
        sink("acme", FakeIncident(1, 20))
        assert store.count() == 2
        assert store.query(tenant="acme")[0].incident["index"] == 1
        with pytest.raises(TypeError):
            sink()

    def test_sink_close_keeps_store_open(self, tmp_path):
        store = SqliteIncidentStore(tmp_path / "incidents.db")
        sink = IncidentStoreSink(store)
        sink(FakeIncident(0, 10))
        sink.close()
        # The server owns the store's lifetime: the REST surface must
        # still be able to read after a pipeline drains its sinks.
        assert store.count() == 1
        store.close()

    def test_stored_incident_round_trip(self):
        record = StoredIncident(
            id=3,
            tenant="acme",
            created_at=12.5,
            incident={"violation_tick": 7},
            diagnosis={"faulty": ["db"]},
        )
        assert StoredIncident.from_dict(record.to_dict()) == record
