"""Wire-format decoding: strict validation, coalescing, tenant routing."""

import math

import pytest

from repro.common.types import Metric
from repro.edge.http import HttpRequest, ProtocolError
from repro.edge.ingest import (
    PERFORMANCE_COMPONENT,
    coalesce,
    decode_csv_push,
    decode_json_push,
    decode_push,
    store_csv_text,
)


def sample(component="web", metric="cpu_usage", time=0, value=0.5):
    return {"component": component, "metric": metric, "time": time, "value": value}


def json_request(payload, query=None):
    import json

    return HttpRequest(
        method="POST",
        path="/v1/ingest",
        query=query or {},
        headers={"content-type": "application/json"},
        body=json.dumps(payload).encode(),
    )


def csv_request(text, query=None):
    return HttpRequest(
        method="POST",
        path="/v1/ingest",
        query=query or {},
        headers={"content-type": "text/csv"},
        body=text.encode(),
    )


class TestJsonDecode:
    def test_samples_become_enum_keyed_metric_samples(self):
        push = decode_json_push({"samples": [sample()]})
        assert push.samples == 1
        [batch] = push.batches
        [decoded] = batch.samples
        assert decoded.component == "web"
        # The store keys series by the Metric enum; a raw string here
        # would silently feed series no diagnosis reads.
        assert decoded.metric is Metric.CPU_USAGE
        assert decoded.time == 0 and decoded.value == 0.5

    def test_bare_list_shorthand(self):
        push = decode_json_push([sample(time=3)])
        assert [b.time for b in push.batches] == [3]

    def test_performance_points_ride_along(self):
        push = decode_json_push(
            {
                "samples": [sample(time=1)],
                "performance": [{"time": 1, "value": 0.25}],
            }
        )
        [batch] = push.batches
        assert batch.performance == 0.25

    def test_unknown_metric_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_json_push({"samples": [sample(metric="cpu")]})
        assert excinfo.value.status == 400
        assert "cpu_usage" in str(excinfo.value)

    @pytest.mark.parametrize(
        "payload",
        [
            {"samples": [sample()], "extra": 1},
            {"samples": [{**sample(), "bonus": 1}]},
            {"samples": [{"component": "web"}]},
            {"samples": [sample(time="soon")]},
            {"samples": [sample(time=1.5)]},
            {"samples": [sample(value="high")]},
            {"samples": [sample(component="")]},
            {"samples": "nope"},
            {"performance": [{"time": 1}]},
            {"tenant": 7, "samples": [sample()]},
            "just a string",
            {},
        ],
    )
    def test_malformed_payloads_are_400(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            decode_json_push(payload)
        assert excinfo.value.status == 400

    def test_nan_value_passes_through_to_quality_policy(self):
        push = decode_json_push({"samples": [sample(value=float("nan"))]})
        [decoded] = push.batches[0].samples
        assert math.isnan(decoded.value)

    def test_nan_time_is_rejected(self):
        with pytest.raises(ProtocolError):
            decode_json_push({"samples": [sample(time=float("nan"))]})


class TestCsvDecode:
    def test_round_trip_through_store_csv_text(self):
        text = store_csv_text(
            [
                (0, "web", "cpu_usage", 0.5),
                (0, PERFORMANCE_COMPONENT, "latency", 0.05),
                (1, "db", "disk_read", 0.9),
            ]
        )
        push = decode_csv_push(text.encode())
        assert push.samples == 2
        assert [b.time for b in push.batches] == [0, 1]
        assert push.batches[0].performance == 0.05
        assert push.batches[1].samples[0].metric is Metric.DISK_READ

    def test_header_is_mandatory(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_csv_push(b"0,web,cpu_usage,0.5\n")
        assert excinfo.value.status == 400

    def test_blank_lines_skipped(self):
        text = "time,component,metric,value\n\n0,web,cpu_usage,0.5\n\n"
        assert decode_csv_push(text.encode()).samples == 1

    @pytest.mark.parametrize(
        "row",
        [
            "0,web,cpu_usage",
            "zero,web,cpu_usage,0.5",
            "0,web,cpu_usage,high",
            "0,,cpu_usage,0.5",
            "0,web,,0.5",
            "0,web,made_up_metric,0.5",
        ],
    )
    def test_malformed_rows_are_400(self, row):
        text = f"time,component,metric,value\n{row}\n"
        with pytest.raises(ProtocolError) as excinfo:
            decode_csv_push(text.encode())
        assert excinfo.value.status == 400

    def test_empty_push_rejected(self):
        with pytest.raises(ProtocolError):
            decode_csv_push(b"time,component,metric,value\n")


class TestCoalesce:
    def test_batches_sorted_and_grouped(self):
        push = decode_json_push(
            {
                "samples": [sample(time=5), sample(time=2), sample(time=5)],
                "performance": [{"time": 9, "value": 1.0}],
            }
        )
        assert [b.time for b in push.batches] == [2, 5, 9]
        assert len(push.batches[1].samples) == 2
        assert push.batches[2].samples == []
        assert push.batches[2].performance == 1.0

    def test_empty_inputs_yield_no_batches(self):
        assert coalesce([], {}) == []


class TestDecodePush:
    def test_content_type_dispatch(self):
        assert decode_push(json_request({"samples": [sample()]})).samples == 1
        text = store_csv_text([(0, "web", "cpu_usage", 0.5)])
        assert decode_push(csv_request(text)).samples == 1

    def test_unsupported_content_type_is_415(self):
        request = json_request({"samples": [sample()]})
        request.headers["content-type"] = "application/xml"
        with pytest.raises(ProtocolError) as excinfo:
            decode_push(request)
        assert excinfo.value.status == 415

    def test_query_tenant_applies(self):
        push = decode_push(
            json_request({"samples": [sample()]}, query={"tenant": "acme"})
        )
        assert push.tenant == "acme"

    def test_body_and_query_tenant_must_agree(self):
        agreeing = json_request(
            {"samples": [sample()], "tenant": "acme"}, query={"tenant": "acme"}
        )
        assert decode_push(agreeing).tenant == "acme"
        disagreeing = json_request(
            {"samples": [sample()], "tenant": "acme"}, query={"tenant": "evil"}
        )
        with pytest.raises(ProtocolError) as excinfo:
            decode_push(disagreeing)
        assert excinfo.value.status == 400
