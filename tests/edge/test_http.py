"""HTTP/1.1 primitives: parsing, routing, response encoding."""

import asyncio

import pytest

from repro.edge.http import (
    HttpResponse,
    ProtocolError,
    Router,
    error_response,
    json_response,
    read_request,
)


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(
            b"GET /v1/incidents?tenant=acme&limit=5 HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/incidents"
        assert request.query == {"tenant": "acme", "limit": "5"}
        assert request.headers["host"] == "localhost"
        assert request.body == b""

    def test_post_with_body(self):
        body = b'{"samples": []}'
        request = parse(
            b"POST /v1/ingest HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.body == body
        assert request.content_type == "application/json"

    def test_content_type_parameters_stripped(self):
        request = parse(
            b"POST / HTTP/1.1\r\n"
            b"Content-Type: text/csv; charset=utf-8\r\n"
            b"Content-Length: 0\r\n\r\n"
        )
        assert request.content_type == "text/csv"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_raises_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nHost: x")
        assert excinfo.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"NOT A REQUEST\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_body_raises_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
            )
        assert excinfo.value.status == 400

    def test_oversized_body_raises_413(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
                max_body=100,
            )
        assert excinfo.value.status == 413

    def test_chunked_encoding_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_keep_alive_default_and_close(self):
        keep = parse(b"GET / HTTP/1.1\r\n\r\n")
        close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert keep.keep_alive
        assert not close.keep_alive

    def test_bad_json_body(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
        )
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_encode_round_trip(self):
        response = json_response({"ok": True}, 202)
        raw = response.encode()
        assert raw.startswith(b"HTTP/1.1 202 Accepted\r\n")
        assert b"Content-Type: application/json" in raw
        assert raw.endswith(b'{"ok":true}\n')

    def test_connection_header_follows_keep_alive(self):
        raw = HttpResponse().encode(keep_alive=False)
        assert b"Connection: close" in raw
        raw = HttpResponse().encode(keep_alive=True)
        assert b"Connection: keep-alive" in raw

    def test_extra_headers_serialized(self):
        raw = error_response(429, "slow down", **{"Retry-After": "2"}).encode()
        assert b"Retry-After: 2" in raw

    def test_content_length_matches_body(self):
        response = json_response({"n": 1})
        raw = response.encode()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert f"Content-Length: {len(body)}".encode() in head


class TestRouter:
    def make(self):
        router = Router()
        router.add("GET", "/v1/incidents", lambda req: "list")
        router.add(
            "GET",
            "/v1/incidents/{incident_id}",
            lambda req, incident_id: f"get {incident_id}",
        )
        router.add("POST", "/v1/ingest", lambda req: "ingest")
        return router

    def test_literal_match(self):
        route, params, _ = self.make().resolve("GET", "/v1/incidents")
        assert route is not None and params == {}

    def test_param_extraction(self):
        route, params, _ = self.make().resolve("GET", "/v1/incidents/17")
        assert route is not None
        assert params == {"incident_id": "17"}

    def test_param_does_not_span_segments(self):
        route, _, _ = self.make().resolve("GET", "/v1/incidents/17/extra")
        assert route is None

    def test_unknown_path_has_no_allowed_methods(self):
        route, _, allowed = self.make().resolve("GET", "/nope")
        assert route is None and allowed == []

    def test_wrong_method_reports_allowed(self):
        route, _, allowed = self.make().resolve("DELETE", "/v1/ingest")
        assert route is None and allowed == ["POST"]

    def test_dispatch_maps_protocol_errors(self):
        router = Router()

        def boom(request):
            raise ProtocolError(415, "bad media")

        router.add("POST", "/x", boom)
        request = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
        )
        response = router.dispatch(request)
        assert response.status == 415
