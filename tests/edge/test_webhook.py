"""Webhook delivery: retry/backoff, circuit breaking, dead letter."""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.common.errors import ConfigurationError
from repro.common.jsonl import read_jsonl
from repro.edge.webhook import WebhookSink, _CircuitBreaker


class Receiver:
    """A local webhook endpoint with a scripted status plan.

    Statuses are consumed per request; once the plan runs out every
    further request gets 200.
    """

    def __init__(self, plan=()):
        self.plan = list(plan)
        self.received = []
        self._lock = threading.Lock()
        receiver = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                body = self.rfile.read(length)
                with receiver._lock:
                    receiver.received.append(json.loads(body))
                    status = receiver.plan.pop(0) if receiver.plan else 200
                self.send_response(status)
                self.send_header("Content-Length", "0")
                self.end_headers()

            def log_message(self, *args):
                pass

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.url = f"http://127.0.0.1:{self.server.server_port}/hook"
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()


class FakeIncident:
    def __init__(self, index=0):
        self.index = index

    def to_dict(self):
        return {"index": self.index, "faulty": ["db"]}


@pytest.fixture
def receiver():
    endpoint = Receiver()
    yield endpoint
    endpoint.close()


def make_sink(url, **kwargs):
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("backoff_cap", 0.05)
    kwargs.setdefault("timeout", 2.0)
    return WebhookSink(url, **kwargs)


class TestDelivery:
    def test_incident_delivered_as_json(self, receiver):
        sink = make_sink(receiver.url)
        sink(FakeIncident(7))
        assert sink.flush(timeout=10.0)
        sink.close()
        [payload] = receiver.received
        assert payload == {"tenant": "", "index": 7, "faulty": ["db"]}
        assert sink.stats.delivered == 1
        assert sink.stats.dead_lettered == 0

    def test_fleet_shape_carries_tenant(self, receiver):
        sink = make_sink(receiver.url)
        sink("acme", FakeIncident(1))
        assert sink.flush(timeout=10.0)
        sink.close()
        assert receiver.received[0]["tenant"] == "acme"

    def test_retries_until_success(self, receiver):
        receiver.plan = [500, 503]
        sink = make_sink(receiver.url, max_attempts=5)
        sink(FakeIncident())
        assert sink.flush(timeout=10.0)
        sink.close()
        assert len(receiver.received) == 3
        assert sink.stats.delivered == 1
        assert sink.stats.retried == 2

    def test_fan_out_to_every_endpoint(self):
        first, second = Receiver(), Receiver()
        try:
            sink = make_sink([first.url, second.url])
            sink(FakeIncident())
            assert sink.flush(timeout=10.0)
            sink.close()
            assert len(first.received) == 1
            assert len(second.received) == 1
            assert sink.stats.delivered == 2
        finally:
            first.close()
            second.close()

    def test_enqueue_after_close_raises(self, receiver):
        sink = make_sink(receiver.url)
        sink.close()
        with pytest.raises(ConfigurationError):
            sink(FakeIncident())

    def test_needs_at_least_one_endpoint(self):
        with pytest.raises(ConfigurationError):
            WebhookSink([])


class TestDeadLetter:
    def test_exhausted_delivery_lands_in_dead_letter(self, tmp_path, receiver):
        receiver.plan = [500, 500, 500]
        dead_letter = tmp_path / "dead.jsonl"
        sink = make_sink(
            receiver.url, max_attempts=3, dead_letter_path=dead_letter
        )
        sink(FakeIncident(4))
        assert sink.flush(timeout=10.0)
        sink.close()
        assert sink.stats.delivered == 0
        assert sink.stats.dead_lettered == 1
        [entry] = read_jsonl(dead_letter)
        assert entry["endpoint"] == receiver.url
        assert entry["attempts"] == 3
        assert entry["error"] == "HTTP 500"
        assert entry["incident"]["index"] == 4

    def test_unreachable_endpoint_dead_letters(self, tmp_path):
        # A port from the dynamic range with nothing listening.
        dead_letter = tmp_path / "dead.jsonl"
        sink = make_sink(
            "http://127.0.0.1:1/hook",
            max_attempts=2,
            dead_letter_path=dead_letter,
        )
        sink(FakeIncident())
        assert sink.flush(timeout=15.0)
        sink.close()
        assert sink.stats.dead_lettered == 1
        [entry] = read_jsonl(dead_letter)
        assert "incident" in entry


class TestCircuitBreaker:
    def test_unit_state_machine(self):
        breaker = _CircuitBreaker(threshold=2, reset_seconds=10.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert not breaker.is_open
        breaker.record_failure(1.0)
        assert breaker.is_open and breaker.trips == 1
        assert not breaker.allow(2.0)
        # After the reset window one half-open probe is allowed.
        assert breaker.allow(11.5)
        breaker.record_failure(11.5)
        assert breaker.is_open and breaker.trips == 1
        breaker.record_success()
        assert not breaker.is_open and breaker.failures == 0

    def test_breaker_short_circuits_attempts(self, receiver):
        receiver.plan = [500] * 50
        sink = make_sink(
            receiver.url,
            max_attempts=4,
            breaker_threshold=2,
            breaker_reset=60.0,
        )
        sink(FakeIncident())
        assert sink.flush(timeout=10.0)
        requests_first = len(receiver.received)
        # Breaker is open now: the next delivery's attempts short-circuit
        # without touching the network.
        sink(FakeIncident())
        assert sink.flush(timeout=10.0)
        sink.close()
        assert len(receiver.received) == requests_first
        assert sink.stats.short_circuited >= 4
        assert sink.stats.breaker_trips == 1
        state = sink.breaker_state(receiver.url)
        assert state["open"] and state["trips"] == 1

    def test_breaker_recovers_after_reset(self, receiver):
        receiver.plan = [500, 500]
        sink = make_sink(
            receiver.url,
            max_attempts=2,
            breaker_threshold=2,
            breaker_reset=0.05,
        )
        sink(FakeIncident())
        assert sink.flush(timeout=10.0)
        assert sink.breaker_state(receiver.url)["open"]
        time.sleep(0.1)
        sink(FakeIncident(1))
        assert sink.flush(timeout=10.0)
        sink.close()
        assert sink.stats.delivered == 1
        assert not sink.breaker_state(receiver.url)["open"]
