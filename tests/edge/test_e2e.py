"""End-to-end: a trace pushed over HTTP diagnoses identically to an
in-process replay of the same batches, and the verdict is durable in
both JSONL and SQLite backends.

This is the acceptance contract of the network edge: the wire adds a
process boundary, not a numerical one.
"""

import pytest

from repro.edge.client import EdgeClient
from repro.edge.server import EdgeConfig, EdgeServer
from repro.edge.store import (
    IncidentStoreSink,
    JsonlIncidentStore,
    SqliteIncidentStore,
    diagnosis_payload,
)
from repro.eval.bench import synthetic_store
from repro.monitoring.slo import LatencySLO
from repro.service.pipeline import OnlinePipeline
from repro.service.sources import StoreReplayFeed

SAMPLES = 1200
COMPONENTS = 4
METRICS = 3
SEED = 11
FAULT_LEAD = 40
#: The SLO signal degrades two ticks after the fault manifests.
DEGRADE_AT = SAMPLES - FAULT_LEAD + 2
THRESHOLD = 0.100
SUSTAIN = 10

#: Timing fields that depend on wall clock, not on the diagnosis.
TIMING_FIELDS = {
    "trigger_latency_seconds",
    "diagnosis_latency_seconds",
    "latency_seconds",
    "summary",
}


def make_batches():
    store = synthetic_store(
        samples=SAMPLES,
        components=COMPONENTS,
        metrics=METRICS,
        seed=SEED,
        fault_lead=FAULT_LEAD,
    )
    performance = {
        t: (0.500 if t >= DEGRADE_AT else 0.010)
        for t in range(store.start, store.end)
    }
    return list(StoreReplayFeed(store, performance=performance))


def strip_timing(payload):
    return {k: v for k, v in payload.items() if k not in TIMING_FIELDS}


@pytest.fixture(scope="module")
def reference_incident():
    """The in-process ground truth: same batches, no network."""
    pipeline = OnlinePipeline(
        make_batches(), LatencySLO(THRESHOLD, sustain=SUSTAIN), seed=SEED
    )
    pipeline.run()
    assert len(pipeline.incidents) == 1, (
        f"reference run produced {len(pipeline.incidents)} incidents"
    )
    return pipeline.incidents[0]


@pytest.fixture(scope="module")
def edge_run(reference_incident, tmp_path_factory):
    """Push the same batches over HTTP into dual durable stores."""
    root = tmp_path_factory.mktemp("edge_e2e")
    jsonl_dir = root / "segments"
    sqlite_path = root / "incidents.db"
    sqlite_store = SqliteIncidentStore(sqlite_path)

    server = EdgeServer(
        EdgeConfig(port=0, queue_depth=256),
        incident_store=JsonlIncidentStore(jsonl_dir),
    )
    server.attach_pipeline(
        LatencySLO(THRESHOLD, sustain=SUSTAIN),
        seed=SEED,
        sinks=[IncidentStoreSink(sqlite_store)],
    )
    server.start()
    client = EdgeClient("127.0.0.1", server.port)
    batches = make_batches()
    try:
        for offset in range(0, len(batches), 40):
            chunk = batches[offset : offset + 40]
            payload = [
                {
                    "component": s.component,
                    "metric": s.metric.value,
                    "time": s.time,
                    "value": s.value,
                }
                for batch in chunk
                for s in batch.samples
            ]
            points = [
                {"time": batch.time, "value": batch.performance}
                for batch in chunk
                if batch.performance is not None
            ]
            response = client.push_json_retrying(payload, performance=points)
            assert response.status == 202, response.body
        stats = client.wait_drained(len(batches), timeout=300.0)
        listed = client.incidents()
        detail = client.incident(listed[0]["id"]) if listed else None
        diagnosis = client.diagnosis(listed[0]["id"]) if listed else None
    finally:
        client.close()
        server.close()
        sqlite_store.close()
    return {
        "stats": stats,
        "listed": listed,
        "detail": detail,
        "diagnosis": diagnosis,
        "jsonl_dir": jsonl_dir,
        "sqlite_path": sqlite_path,
        "ticks": len(batches),
    }


def test_exactly_one_incident_over_the_wire(edge_run):
    assert len(edge_run["listed"]) == 1
    assert edge_run["stats"]["pipeline"]["ticks"] == edge_run["ticks"]
    assert edge_run["stats"]["incidents"] == 1


def test_incident_summary_matches_in_process_run(edge_run, reference_incident):
    expected = strip_timing(reference_incident.to_dict())
    actual = strip_timing(edge_run["detail"]["incident"])
    assert actual == expected


def test_diagnosis_is_bit_identical(edge_run, reference_incident):
    """The wire must not perturb the verdict: same faulty set, same
    confidence, same chain, same violation tick."""
    expected = strip_timing(diagnosis_payload(reference_incident.diagnosis))
    actual = strip_timing(edge_run["diagnosis"]["diagnosis"])
    assert actual == expected
    assert actual["faulty"], "the synthetic fault must be pinpointed"
    assert actual["faulty"] == sorted(reference_incident.faulty)


def test_verdict_named_the_injected_culprit(edge_run):
    # synthetic_store faults component c0.
    assert edge_run["detail"]["incident"]["faulty"] == ["c0"]


def test_incident_durable_in_both_backends(edge_run, reference_incident):
    jsonl = JsonlIncidentStore(edge_run["jsonl_dir"])
    sqlite = SqliteIncidentStore(edge_run["sqlite_path"])
    try:
        assert jsonl.count() == 1
        assert sqlite.count() == 1
        from_jsonl = jsonl.get(1)
        from_sqlite = sqlite.get(1)
        expected = strip_timing(reference_incident.to_dict())
        for record in (from_jsonl, from_sqlite):
            assert strip_timing(record.incident) == expected
        # The two backends hold the same record (timestamps differ by
        # the sink call interleaving, nothing else).
        assert from_jsonl.incident == from_sqlite.incident
        assert from_jsonl.diagnosis == from_sqlite.diagnosis
        assert from_jsonl.id == from_sqlite.id == 1
    finally:
        jsonl.close()
        sqlite.close()


def test_no_batches_lost_or_duplicated(edge_run):
    stats = edge_run["stats"]
    assert stats["enqueued_batches"] == edge_run["ticks"]
    assert stats["pipeline"]["ticks"] == edge_run["ticks"]
