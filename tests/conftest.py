"""Shared fixtures.

Full application runs are the expensive part of this suite, so the runs
that several test modules need (a faulty RUBiS run, a System S run, a
Hadoop run, and the offline dependency profiling runs) are session-scoped
and computed once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.hadoop import HadoopApplication
from repro.apps.rubis import DB, RubisApplication
from repro.apps.systems import SystemSApplication
from repro.core.dependency import discover_dependencies
from repro.faults.library import CpuHogFault, MemLeakFault


@pytest.fixture(scope="session")
def rubis_cpuhog_run():
    """A RUBiS run with a CpuHog injected at the database at t=1300."""
    app = RubisApplication(seed=101, duration=2400)
    app.inject(CpuHogFault(1300, DB))
    app.run(1400)
    violation = app.slo.first_violation_after(1300)
    assert violation is not None
    return app, violation


@pytest.fixture(scope="session")
def systems_memleak_run():
    """A System S run with a memory leak injected at PE3 at t=1300."""
    app = SystemSApplication(seed=202, duration=2400)
    app.inject(MemLeakFault(1300, "PE3"))
    app.run(1600)
    violation = app.slo.first_violation_after(1300)
    assert violation is not None
    return app, violation


@pytest.fixture(scope="session")
def hadoop_idle_run():
    """A fault-free Hadoop run (900 simulated seconds)."""
    app = HadoopApplication(seed=303)
    app.run(900)
    return app


@pytest.fixture(scope="session")
def rubis_dependency_graph():
    """Black-box discovered dependency graph for RUBiS."""
    app = RubisApplication(seed=999, duration=240, record_packets=True)
    app.run(240)
    return discover_dependencies(app.packet_trace).graph


@pytest.fixture(scope="session")
def systems_discovery():
    """Discovery result for System S (expected to find nothing)."""
    app = SystemSApplication(seed=999, duration=180, record_packets=True)
    app.run(180)
    return discover_dependencies(app.packet_trace)


@pytest.fixture
def rng():
    return np.random.default_rng(7)
