"""Tests for the guest VM model."""

import pytest

from repro.cloud.vm import VirtualMachine
from repro.common.errors import SimulationError


class TestConstruction:
    def test_defaults(self):
        vm = VirtualMachine("v")
        assert vm.vcpus == 1.0
        assert vm.vcpus_baseline == 1.0
        assert vm.cpu_cap == 1.0

    def test_rejects_bad_resources(self):
        with pytest.raises(SimulationError):
            VirtualMachine("v", vcpus=0)
        with pytest.raises(SimulationError):
            VirtualMachine("v", memory_limit_mb=0)
        with pytest.raises(SimulationError):
            VirtualMachine("v", cpu_cap=1.5)


class TestCpuScheduling:
    def test_request_capped_by_cap(self):
        vm = VirtualMachine("v", cpu_cap=0.2)
        assert vm.cpu_request(1.0) == pytest.approx(0.2)

    def test_uncontended_full_speed(self):
        vm = VirtualMachine("v")
        vm.cpu_request(0.5)
        vm.granted_cpu = 0.5
        assert vm.component_cpu_share() == pytest.approx(1.0)

    def test_hog_competes_proportionally(self):
        vm = VirtualMachine("v")
        vm.extra_cpu_cores = 7.0
        vm.cpu_request(1.0)  # component wants a full core
        vm.granted_cpu = 1.0  # host grants the cap
        assert vm.component_cpu_share() == pytest.approx(1.0 / 8.0)
        assert vm.hog_cpu_cores() == pytest.approx(7.0 / 8.0)

    def test_scale_up_dilutes_hog(self):
        vm = VirtualMachine("v")
        vm.extra_cpu_cores = 7.0
        vm.scale_cpu(8.0)
        vm.cpu_request(1.0)
        vm.granted_cpu = 8.0
        # Uncontended after the scale-up: at least nominal speed again.
        assert vm.component_cpu_share() >= 1.0

    def test_bottleneck_cap(self):
        vm = VirtualMachine("v", cpu_cap=0.1)
        vm.cpu_request(1.0)
        vm.granted_cpu = 0.1
        assert vm.component_cpu_share() == pytest.approx(0.1)

    def test_max_component_fraction_scales(self):
        vm = VirtualMachine("v")
        vm.scale_cpu(2.0)
        assert vm.max_component_fraction() == pytest.approx(2.0)

    def test_zero_demand_share_is_max(self):
        vm = VirtualMachine("v")
        vm.cpu_request(0.0)
        vm.granted_cpu = 0.0
        assert vm.component_cpu_share() == pytest.approx(1.0)


class TestMemory:
    def test_no_pressure_below_85pct(self):
        vm = VirtualMachine("v", memory_limit_mb=1000)
        assert vm.memory_pressure(800) == 1.0
        assert vm.swap_rate_kbps(800) == 0.0

    def test_pressure_grows(self):
        vm = VirtualMachine("v", memory_limit_mb=1000)
        assert vm.memory_pressure(999) < vm.memory_pressure(900) < 1.0

    def test_pressure_floor(self):
        vm = VirtualMachine("v", memory_limit_mb=1000)
        assert vm.memory_pressure(5000) == pytest.approx(0.05)

    def test_swap_appears_under_pressure(self):
        vm = VirtualMachine("v", memory_limit_mb=1000)
        assert vm.swap_rate_kbps(950) > 0

    def test_scale_memory(self):
        vm = VirtualMachine("v", memory_limit_mb=1000)
        vm.scale_memory(2.0)
        assert vm.memory_pressure(900) == 1.0


class TestValidationLevers:
    def test_scale_cpu_lifts_cap(self):
        vm = VirtualMachine("v", cpu_cap=0.1)
        vm.scale_cpu(2.0)
        assert vm.cpu_cap == 1.0
        assert vm.vcpus == 2.0

    def test_scale_rejects_nonpositive(self):
        vm = VirtualMachine("v")
        with pytest.raises(SimulationError):
            vm.scale_cpu(0)
        with pytest.raises(SimulationError):
            vm.scale_memory(-1)
