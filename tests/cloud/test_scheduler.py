"""Tests for per-tick resource scheduling."""

import pytest

from repro.cloud.host import Host
from repro.cloud.scheduler import schedule_tick
from repro.cloud.vm import VirtualMachine
from repro.sim.component import ComponentSpec, QueueComponent


def deployment(disk_bound=False):
    host = Host("h", cores=2.0, disk_bw_kbps=10000.0)
    comps, vms = {}, {}
    for name in ("a", "b"):
        vm = VirtualMachine(name)
        host.attach(vm)
        comps[name] = QueueComponent(
            ComponentSpec(
                name,
                capacity=100.0,
                disk_read_kb_per_item=50.0 if disk_bound else 0.0,
                disk_bound=disk_bound,
            )
        )
        vms[name] = vm
    return host, comps, vms


class TestScheduleTick:
    def test_idle_components_full_shares(self):
        host, comps, vms = deployment()
        cpu, disk, mem = schedule_tick([host], comps, vms)
        assert cpu["a"] == pytest.approx(1.0)
        assert disk["a"] == pytest.approx(1.0)
        assert mem["a"] == pytest.approx(1.0)

    def test_hog_reduces_share(self):
        host, comps, vms = deployment()
        comps["a"].enqueue(100)
        vms["a"].extra_cpu_cores = 7.0
        cpu, _, _ = schedule_tick([host], comps, vms)
        assert cpu["a"] < 0.2

    def test_memory_pressure_penalty(self):
        host, comps, vms = deployment()
        comps["a"].leaked_mb = 5000.0
        _, _, mem = schedule_tick([host], comps, vms)
        assert mem["a"] < 1.0
        assert mem["b"] == pytest.approx(1.0)

    def test_disk_contention(self):
        host, comps, vms = deployment(disk_bound=True)
        comps["a"].enqueue(100)
        comps["b"].enqueue(100)
        host.dom0_disk_kbps = 9000.0
        _, disk, _ = schedule_tick([host], comps, vms)
        assert disk["a"] < 1.0

    def test_bottleneck_cap_respected(self):
        host, comps, vms = deployment()
        comps["a"].enqueue(100)
        vms["a"].cpu_cap = 0.1
        cpu, _, _ = schedule_tick([host], comps, vms)
        assert cpu["a"] == pytest.approx(0.1, abs=0.01)
