"""Tests for the Domain-0 monitor."""

from repro.cloud.host import Host
from repro.cloud.monitor import DomainZeroMonitor
from repro.cloud.vm import VirtualMachine
from repro.common.types import METRIC_NAMES
from repro.monitoring.store import MetricStore
from repro.sim.component import ComponentSpec, QueueComponent


def build():
    store = MetricStore()
    monitor = DomainZeroMonitor(store, seed=1)
    host = Host("h")
    comp = QueueComponent(ComponentSpec("c", capacity=10.0))
    vm = VirtualMachine("c")
    host.attach(vm)
    monitor.register(comp, vm, host)
    return store, monitor, comp


def test_sample_all_records_six_metrics():
    store, monitor, comp = build()
    monitor.sample_all(0)
    assert store.length == 1
    assert store.metrics_for("c") == list(METRIC_NAMES)


def test_series_grow_per_tick():
    store, monitor, comp = build()
    for t in range(5):
        monitor.sample_all(t)
    for metric in METRIC_NAMES:
        assert len(store.series("c", metric)) == 5


def test_monitored_names():
    _, monitor, _ = build()
    assert monitor.monitored == ("c",)
