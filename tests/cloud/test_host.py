"""Tests for the host scheduler."""

import pytest

from repro.cloud.host import Host
from repro.cloud.vm import VirtualMachine
from repro.common.errors import SimulationError


def build(n_vms=2, cores=2.0):
    host = Host("h", cores=cores)
    vms = [VirtualMachine(f"v{i}") for i in range(n_vms)]
    for vm in vms:
        host.attach(vm)
    return host, vms


class TestAttach:
    def test_attach_sets_host(self):
        host, vms = build()
        assert all(vm.host is host for vm in vms)

    def test_double_attach_rejected(self):
        host, vms = build()
        with pytest.raises(SimulationError):
            host.attach(vms[0])

    def test_bad_resources_rejected(self):
        with pytest.raises(SimulationError):
            Host("h", cores=0)


class TestCpuAllocation:
    def test_undersubscribed_full_grant(self):
        host, vms = build()
        host.allocate_cpu({"v0": 0.5, "v1": 0.5})
        assert vms[0].granted_cpu == pytest.approx(0.5)

    def test_oversubscribed_proportional(self):
        host, vms = build(cores=1.0)
        vms[0].extra_cpu_cores = 1.0
        vms[1].extra_cpu_cores = 1.0
        host.allocate_cpu({"v0": 0.0, "v1": 0.0})
        # Each asks for 1 core (cap), host has 1 -> half each.
        assert vms[0].granted_cpu == pytest.approx(0.5)
        assert vms[1].granted_cpu == pytest.approx(0.5)

    def test_unlisted_vm_demands_only_hog(self):
        host, vms = build()
        vms[1].extra_cpu_cores = 0.3
        host.allocate_cpu({"v0": 0.5})
        assert vms[1].granted_cpu == pytest.approx(0.3)


class TestDiskAllocation:
    def test_full_share_when_light(self):
        host, _ = build()
        shares = host.allocate_disk({"v0": 1000.0, "v1": 2000.0})
        assert shares == {"v0": 1.0, "v1": 1.0}

    def test_proportional_when_saturated(self):
        host, _ = build()
        host.disk_bw_kbps = 3000.0
        shares = host.allocate_disk({"v0": 3000.0, "v1": 3000.0})
        assert shares["v0"] == pytest.approx(0.5)

    def test_dom0_served_first(self):
        host, _ = build()
        host.disk_bw_kbps = 3000.0
        host.dom0_disk_kbps = 2400.0
        shares = host.allocate_disk({"v0": 1200.0})
        assert shares["v0"] == pytest.approx(0.5)

    def test_share_floor(self):
        host, _ = build()
        host.dom0_disk_kbps = host.disk_bw_kbps
        shares = host.allocate_disk({"v0": 1000.0})
        assert shares["v0"] >= 1e-3

    def test_zero_demand(self):
        host, _ = build()
        assert host.allocate_disk({}) == {}
