"""Tests for packet trace synthesis."""

import numpy as np

from repro.cloud.network import PacketEvent, PacketTrace, SyntheticPacketizer


class TestTrace:
    def test_record_and_sort(self):
        trace = PacketTrace()
        trace.record(PacketEvent(2.0, "a", "b"))
        trace.record(PacketEvent(1.0, "a", "b"))
        assert [e.time for e in trace.events] == [1.0, 2.0]

    def test_edges(self):
        trace = PacketTrace()
        trace.extend(
            [PacketEvent(0.0, "a", "b"), PacketEvent(1.0, "b", "c")]
        )
        assert trace.edges() == [("a", "b"), ("b", "c")]

    def test_edge_events_filtered_sorted(self):
        trace = PacketTrace()
        trace.extend(
            [
                PacketEvent(3.0, "a", "b", flow=2),
                PacketEvent(1.0, "a", "b", flow=1),
                PacketEvent(2.0, "x", "y", flow=9),
            ]
        )
        events = trace.edge_events("a", "b")
        assert events == [(1.0, 1), (3.0, 2)]


class TestPacketizer:
    def test_request_mode_distinct_flows(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, streaming=False, seed_parts=("t", 1))
        for t in range(10):
            pkt.emit(t, "a", "b", 5.0)
        flows = {e.flow for e in trace.events}
        assert len(flows) >= 40  # ~5 requests/tick, each its own flow

    def test_streaming_mode_single_flow(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, streaming=True, seed_parts=("t", 2))
        for t in range(10):
            pkt.emit(t, "a", "b", 20.0)
        assert {e.flow for e in trace.events} == {0}

    def test_streaming_mode_gapless(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, streaming=True, seed_parts=("t", 3))
        for t in range(20):
            pkt.emit(t, "a", "b", 30.0)
        times = np.array([e.time for e in trace.events])
        gaps = np.diff(np.sort(times))
        assert gaps.max() < 0.1

    def test_zero_messages_no_packets(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, seed_parts=("t", 4))
        pkt.emit(0, "a", "b", 0.0)
        assert len(trace) == 0

    def test_emit_path_correlates_hops(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, seed_parts=("t", 5))
        pkt.emit_path(0, [("a", "b"), ("b", "c")], 10.0, hop_delay=0.004)
        ab = trace.edge_times("a", "b")
        bc = trace.edge_times("b", "c")
        assert len(ab) and len(bc)
        # Every b->c burst follows an a->b burst within ~10 ms.
        for t in bc:
            assert np.min(np.abs(ab - t)) < 0.02

    def test_message_cap(self):
        trace = PacketTrace()
        pkt = SyntheticPacketizer(trace, packets_per_message=1, seed_parts=("t", 6))
        pkt.emit(0, "a", "b", 100000.0)
        assert len(trace) <= 200
