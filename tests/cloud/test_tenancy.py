"""Tests for multi-tenant shared deployments."""

import pytest

from repro.apps.rubis import DB, RubisApplication
from repro.apps.systems import SystemSApplication
from repro.cloud.tenancy import SharedDeployment
from repro.common.errors import SimulationError
from repro.core import FChain
from repro.faults.library import CpuHogFault


def build(seed=5, **kwargs):
    rubis = RubisApplication(seed=seed, duration=1800)
    systems = SystemSApplication(seed=seed, duration=1800)
    return rubis, systems, SharedDeployment([rubis, systems], **kwargs)


class TestConstruction:
    def test_vms_replaced_onto_shared_hosts(self):
        rubis, systems, cloud = build()
        assert len(cloud.vms) == 11  # 4 RUBiS + 7 PEs
        assert len(cloud.hosts) == 6
        for vm in cloud.vms.values():
            assert vm.host in cloud.hosts

    def test_tenants_interleaved(self):
        """Round-robin placement mixes tenants on hosts."""
        rubis, systems, cloud = build()
        mixed = 0
        for host in cloud.hosts:
            owners = {cloud.tenant_of(vm.name).name for vm in host.vms}
            if len(owners) > 1:
                mixed += 1
        assert mixed >= 1

    def test_duplicate_names_rejected(self):
        a = RubisApplication(seed=1, duration=60)
        b = RubisApplication(seed=2, duration=60)
        with pytest.raises(SimulationError):
            SharedDeployment([a, b])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            SharedDeployment([])

    def test_tenant_of(self):
        rubis, systems, cloud = build()
        assert cloud.tenant_of("db") is rubis
        assert cloud.tenant_of("PE3") is systems
        with pytest.raises(KeyError):
            cloud.tenant_of("ghost")


class TestExecution:
    def test_healthy_consolidated_run(self):
        rubis, systems, cloud = build()
        cloud.run(400)
        assert rubis.slo.first_violation is None
        assert systems.slo.first_violation is None
        assert rubis.store.length == 400
        assert systems.store.length == 400

    def test_fault_in_one_tenant_localized(self):
        rubis, systems, cloud = build()
        rubis.inject(CpuHogFault(600, DB))
        cloud.run(1100)
        violation = rubis.slo.first_violation_after(600)
        assert violation is not None
        result = FChain(seed=5).localize(rubis.store, violation_time=violation)
        assert result.faulty == frozenset({DB})

    def test_dense_packing_creates_interference(self):
        """Oversubscribed hosts: one tenant's hog visibly slows the other."""
        rubis, systems, cloud = build(seed=9, vms_per_host=4, hosts_cores=2.0)
        cloud.run(400)
        baseline = systems.slo.performance_series().values[300:400].mean()
        rubis.inject(CpuHogFault(400, DB, cores=7.0))
        cloud.run(200)
        disturbed = systems.slo.performance_series().values[500:600].mean()
        # The co-located stream tenant pays for RUBiS's noisy neighbour.
        assert disturbed > baseline
