"""Consistent-hash ring properties.

The rebalance cost model of the fleet depends on two exact invariants —
adding a shard only pulls keys *onto* the new shard, removing one only
displaces keys that *lived* on it — plus the statistical ~1/N movement
bound that makes resharding affordable at fleet scale.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.fleet.ring import HashRing

tenant_ids = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
        max_size=24,
    ),
    min_size=1,
    max_size=300,
    unique=True,
)


class TestExactInvariants:
    @given(keys=tenant_ids, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_adding_a_shard_only_moves_keys_onto_it(self, keys, shards):
        ring = HashRing(range(shards))
        before = ring.assignments(keys)
        ring.add_shard(shards)
        after = ring.assignments(keys)
        for key in keys:
            assert after[key] == before[key] or after[key] == shards, (
                f"{key!r} moved between two pre-existing shards "
                f"({before[key]} -> {after[key]}) when shard {shards} "
                "was added"
            )

    @given(keys=tenant_ids, shards=st.integers(min_value=2, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_removing_a_shard_only_moves_its_own_keys(self, keys, shards):
        ring = HashRing(range(shards))
        before = ring.assignments(keys)
        ring.remove_shard(0)
        after = ring.assignments(keys)
        for key in keys:
            if before[key] != 0:
                assert after[key] == before[key], (
                    f"{key!r} was displaced from surviving shard "
                    f"{before[key]} by the removal of shard 0"
                )
            else:
                assert after[key] != 0

    @given(keys=tenant_ids)
    @settings(max_examples=25, deadline=None)
    def test_assignments_are_deterministic_across_instances(self, keys):
        first = HashRing(range(4)).assignments(keys)
        second = HashRing(range(4)).assignments(keys)
        assert first == second


class TestMovementBound:
    def test_growing_the_pool_moves_about_one_over_n(self):
        keys = [f"tenant-{i:04d}" for i in range(2000)]
        for shards in (2, 4, 8):
            ring = HashRing(range(shards))
            before = ring.assignments(keys)
            ring.add_shard(shards)
            after = ring.assignments(keys)
            moved = sum(1 for k in keys if before[k] != after[k])
            expected = len(keys) / (shards + 1)
            # Generous slack: vnode placement is pseudo-random, so the
            # realized fraction jitters around 1/(N+1).
            assert moved <= 2.0 * expected, (
                f"{moved} of {len(keys)} keys moved growing "
                f"{shards}->{shards + 1} shards (expected ~{expected:.0f})"
            )
            assert moved > 0

    def test_distribution_is_roughly_balanced(self):
        keys = [f"tenant-{i:04d}" for i in range(2000)]
        ring = HashRing(range(4))
        counts = {shard: 0 for shard in range(4)}
        for shard in ring.assignments(keys).values():
            counts[shard] += 1
        fair = len(keys) / 4
        for shard, count in counts.items():
            assert 0.5 * fair <= count <= 1.5 * fair, (
                f"shard {shard} owns {count} of {len(keys)} keys "
                f"(fair share {fair:.0f})"
            )


class TestRingEdges:
    def test_empty_ring_refuses_lookup(self):
        ring = HashRing(range(1))
        ring.remove_shard(0)
        with pytest.raises(ConfigurationError, match="no shards"):
            ring.shard_for("tenant")

    def test_duplicate_shard_rejected(self):
        ring = HashRing(range(2))
        with pytest.raises(ConfigurationError, match="already"):
            ring.add_shard(1)

    def test_unknown_shard_removal_rejected(self):
        ring = HashRing(range(2))
        with pytest.raises(ConfigurationError, match="not on the ring"):
            ring.remove_shard(7)

    def test_shards_property_lists_members(self):
        ring = HashRing([3, 1, 2])
        assert ring.shards == [1, 2, 3]
