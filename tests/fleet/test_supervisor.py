"""Fleet supervisor behaviour: routing, isolation, observability, drain.

Small fleets (a handful of tenants, short synthetic runs) exercise the
full supervisor → shard worker → tenant runtime path on both backends;
the budget/fairness mechanics are unit-tested directly on
:class:`ShardWorker` so the assertions are deterministic.
"""

import time

import pytest

from repro.common.errors import ConfigurationError, ReproError
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    ShardWorker,
    TenantSpec,
    manifest_from_dict,
    run_manifest,
)
from repro.fleet.tenant import FleetTrigger
from repro.monitoring.slo import LatencySLO
from repro.obs.registry import MetricsRegistry
from repro.service.sources import TickBatch


def _manifest(count=6, shards=2, fault_tenant=None, **overrides):
    document = {
        "shards": shards,
        "generate": {"count": count, "prefix": "t"},
        "defaults": {
            "components": 4,
            "look_back_window": 30,
            "analysis_grace": 4,
            "slo_sustain": 3,
        },
    }
    if fault_tenant is not None:
        document["faults"] = [
            {"tenant": fault_tenant, "at": 40, "component": 1}
        ]
    document.update(overrides)
    return manifest_from_dict(document)


class TestConfigValidation:
    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            FleetConfig(backend="fibers").validate()

    def test_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            FleetConfig(shards=0).validate()
        with pytest.raises(ConfigurationError, match="queue_depth"):
            FleetConfig(queue_depth=0).validate()
        with pytest.raises(ConfigurationError, match="tenant_budget"):
            FleetConfig(tenant_budget=0).validate()


class TestRoutingAndLifecycle:
    def test_placement_covers_every_tenant(self):
        manifest = _manifest(count=12, shards=3)
        supervisor = FleetSupervisor(manifest.fleet_config())
        try:
            for spec in manifest.tenant_specs():
                supervisor.add_tenant(spec)
            placement = supervisor.shard_map()
            placed = sorted(t for ts in placement.values() for t in ts)
            assert placed == sorted(manifest.tenants)
            assert set(placement) == {0, 1, 2}
        finally:
            supervisor.close()

    def test_unknown_tenant_ingest_raises(self):
        supervisor = FleetSupervisor(FleetConfig(shards=1))
        try:
            with pytest.raises(ConfigurationError, match="not registered"):
                supervisor.ingest("ghost", None)
        finally:
            supervisor.close()

    def test_duplicate_tenant_rejected(self):
        supervisor = FleetSupervisor(FleetConfig(shards=1))
        try:
            spec = TenantSpec(tenant="a", detector=LatencySLO(0.1))
            supervisor.add_tenant(spec)
            with pytest.raises(ConfigurationError, match="already"):
                supervisor.add_tenant(spec)
        finally:
            supervisor.close()

    def test_closed_fleet_refuses_work(self):
        supervisor = FleetSupervisor(FleetConfig(shards=1))
        supervisor.close()
        with pytest.raises(ReproError, match="closed"):
            supervisor.ingest("a", None)
        with pytest.raises(ReproError, match="closed"):
            supervisor.add_tenant(
                TenantSpec(tenant="a", detector=LatencySLO(0.1))
            )

    def test_close_is_idempotent(self):
        supervisor = FleetSupervisor(FleetConfig(shards=1))
        supervisor.close()
        supervisor.close()


class TestEndToEnd:
    def test_one_fault_one_incident_no_cross_tenant(self):
        manifest = _manifest(count=6, fault_tenant="t-0002")
        result = run_manifest(manifest, 60)
        supervisor = result.supervisor
        assert not supervisor.failures
        assert result.dropped == 0
        assert list(supervisor.incidents) == ["t-0002"]
        assert len(supervisor.incidents["t-0002"]) == 1
        incident = supervisor.incidents["t-0002"][0]
        assert incident.violation_tick == 42  # fault 40 + sustain 3
        stats = supervisor.tenant_stats
        assert set(stats) == set(manifest.tenants)
        assert all(entry["ticks"] == 60 for entry in stats.values())

    def test_quiescent_fleet_raises_nothing(self):
        manifest = _manifest(count=4)
        result = run_manifest(manifest, 30)
        assert result.supervisor.incidents == {}
        assert not result.supervisor.failures

    def test_process_backend_agrees_with_thread(self):
        from repro.core.engine import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        verdicts = {}
        for backend in ("thread", "process"):
            manifest = _manifest(
                count=4, fault_tenant="t-0001", backend=backend
            )
            result = run_manifest(manifest, 60)
            assert not result.supervisor.failures
            incidents = result.supervisor.incidents
            assert list(incidents) == ["t-0001"]
            incident = incidents["t-0001"][0]
            verdicts[backend] = (
                incident.violation_tick,
                incident.diagnosis.faulty,
                incident.diagnosis.external_factor,
            )
        assert verdicts["thread"] == verdicts["process"]

    def test_incident_sinks_fire(self):
        seen = []
        manifest = _manifest(count=4, fault_tenant="t-0001")
        run_manifest(
            manifest, 60, sinks=[lambda tenant, i: seen.append(tenant)]
        )
        assert seen == ["t-0001"]


class _SlowSamples(list):
    """A sample list whose iteration wedges the consuming serve loop."""

    def __iter__(self):
        time.sleep(0.4)
        return super().__iter__()


class TestBackpressure:
    def test_full_shard_queue_sheds_with_counted_drop(self):
        config = FleetConfig(shards=1, queue_depth=1, route_timeout=0.0)
        registry = MetricsRegistry()
        supervisor = FleetSupervisor(config, registry=registry)
        try:
            spec = TenantSpec(tenant="a", detector=LatencySLO(0.1))
            supervisor.add_tenant(spec)
            deadline = time.monotonic() + 5.0
            while supervisor._shards[0].depth() > 0:
                assert time.monotonic() < deadline, "add never consumed"
                time.sleep(0.01)
            # Wedge the single shard: the first batch's sample list
            # sleeps inside the worker's ingest, the second parks on
            # the depth-1 queue, so the third must be shed.
            assert supervisor.ingest(
                "a", TickBatch(time=0, samples=_SlowSamples())
            )
            time.sleep(0.05)  # let the worker take the slow batch
            assert supervisor.ingest("a", TickBatch(time=1))
            shed = supervisor.ingest("a", TickBatch(time=2))
            assert shed is False
            assert supervisor.ingest_dropped[0] == 1
            counter = registry.counter(
                "fchain_fleet_ingest_dropped_total", label_names=("shard",)
            )
            assert counter.value(shard="0") == 1.0
        finally:
            supervisor.close()


class TestObservability:
    def test_fleet_metrics_exported(self):
        registry = MetricsRegistry()
        manifest = _manifest(count=4, fault_tenant="t-0001")
        supervisor = FleetSupervisor(
            manifest.fleet_config(), registry=registry
        )
        run_manifest(manifest, 60, supervisor=supervisor)
        supervisor.close()
        gauge = registry.gauge("fchain_fleet_tenants")
        assert gauge.value() == 4.0
        incidents = registry.counter(
            "fchain_fleet_incidents_total", label_names=("tenant",)
        )
        assert incidents.value(tenant="t-0001") == 1.0
        text = registry.render_prometheus()
        assert "fchain_fleet_tenants 4" in text
        assert 'fchain_fleet_incidents_total{tenant="t-0001"} 1' in text
        assert "fchain_fleet_shard_queue_depth" in text


class _Events:
    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)


class TestShardWorkerFairness:
    def _worker(self, budget=4):
        worker = ShardWorker(0, _Events(), tenant_budget=budget)
        # Unit-test the queueing mechanics without a live dispatcher.
        worker._ensure_dispatcher = lambda: None
        return worker

    def test_budget_sheds_excess_triggers(self):
        worker = self._worker(budget=2)
        for i in range(5):
            worker._enqueue("noisy", FleetTrigger(i, 0.0))
        assert len(worker._queues["noisy"]) == 2
        assert worker.shed["noisy"] == 3

    def test_drain_triggers_bypass_budget(self):
        worker = self._worker(budget=1)
        worker._enqueue("t", FleetTrigger(0, 0.0))
        worker._enqueue("t", FleetTrigger(1, 0.0), budgeted=False)
        assert len(worker._queues["t"]) == 2

    def test_dispatch_is_round_robin_across_tenants(self):
        worker = self._worker()
        for tick in range(3):
            worker._enqueue("a", FleetTrigger(tick, 0.0))
        worker._enqueue("b", FleetTrigger(0, 0.0))
        worker._enqueue("c", FleetTrigger(0, 0.0))
        order = []
        while True:
            item = worker._next_trigger()
            if item is None:
                break
            order.append(item[0])
        # One trigger per visit: a's backlog cannot monopolize the
        # dispatcher while b and c wait.
        assert order == ["a", "b", "c", "a", "a"]
