"""Tenant relocation: bit-identical verdicts, no shared-memory leaks.

A tenant moved between shards travels as a shared-memory store export
plus a small pickled auxiliary state; the receiving shard materializes
a writable store and warm-syncs its Markov models from it. Because
``update_many`` is chunk-invariant, the rebuilt models must be
bit-identical to models that never moved — and therefore so must every
subsequent diagnosis. The /dev/shm leak checks pin the second half of
the contract: every segment a fleet (or a crashing worker) creates is
unlinked by drain, close or garbage collection.
"""

import gc
import os
import pathlib

import pytest

from repro.core.config import FChainConfig
from repro.eval.bench import synthetic_store
from repro.fleet import FleetSupervisor, TenantSpec, manifest_from_dict
from repro.fleet.manifest import FleetFeed
from repro.fleet.tenant import TenantRuntime
from repro.monitoring.shared import SharedStoreExport
from repro.monitoring.slo import LatencySLO
from repro.monitoring.store import MetricStore
from repro.service import StoreReplayFeed

SAMPLES = 1_500
FAULT_LEAD = 40
SEED = 7
MOVE_AT = 1_000

SHM_DIR = pathlib.Path("/dev/shm")


@pytest.fixture(scope="module")
def faulty_store():
    return synthetic_store(
        samples=SAMPLES, components=4, metrics=2, seed=SEED,
        fault_lead=FAULT_LEAD,
    )


def _performance(store):
    onset = store.end - FAULT_LEAD + 5
    return {
        t: (0.5 if t >= onset else 0.01)
        for t in range(store.start, store.end)
    }


def _spec():
    return TenantSpec(
        tenant="mover",
        detector=LatencySLO(0.1, sustain=5),
        config=FChainConfig(),
        seed=SEED,
    )


def _drive(runtime, batches):
    """Feed batches, diagnosing every ready trigger immediately."""
    incidents = []
    for batch in batches:
        for trigger in runtime.process(batch):
            incidents.append(runtime.diagnose(trigger))
    return incidents


class TestRelocatedRuntimeBitIdentity:
    def test_mid_stream_relocation_changes_nothing(self, faulty_store):
        performance = _performance(faulty_store)
        batches = list(
            StoreReplayFeed(faulty_store, performance=performance)
        )

        stayed = TenantRuntime(_spec())
        stayed_incidents = _drive(stayed, batches)
        stayed.close()

        moved = TenantRuntime(_spec())
        _drive(moved, batches[:MOVE_AT])
        snapshot = moved.export_state()
        rebuilt = TenantRuntime.from_state(snapshot)
        moved.release()  # source drops the segment post-import
        moved_incidents = _drive(rebuilt, batches[MOVE_AT:])
        rebuilt.close()

        assert len(stayed_incidents) == len(moved_incidents) == 1
        left = stayed_incidents[0]
        right = moved_incidents[0]
        assert left.violation_tick == right.violation_tick
        assert left.dispatched_tick == right.dispatched_tick
        assert left.diagnosis.faulty == right.diagnosis.faulty
        assert "c0" in right.diagnosis.faulty
        assert (
            left.diagnosis.external_factor
            == right.diagnosis.external_factor
        )
        assert left.diagnosis.skipped == right.diagnosis.skipped
        assert left.diagnosis.chain.links == right.diagnosis.chain.links

    def test_relocated_store_reads_identically(self, faulty_store):
        performance = _performance(faulty_store)
        batches = list(
            StoreReplayFeed(faulty_store, performance=performance)
        )
        runtime = TenantRuntime(_spec())
        _drive(runtime, batches[:MOVE_AT])
        snapshot = runtime.export_state()
        rebuilt = TenantRuntime.from_state(snapshot)
        runtime.release()
        try:
            import numpy as np

            for component in rebuilt.store.components:
                for metric in rebuilt.store.metrics_for(component):
                    series = rebuilt.store.series(component, metric)
                    original = faulty_store.window(
                        component, metric, series.start, MOVE_AT
                    )
                    np.testing.assert_array_equal(
                        np.asarray(series.values),
                        np.asarray(original.values),
                    )
        finally:
            rebuilt.close()


class TestSupervisorMove:
    def test_move_mid_stream_still_exactly_one_incident(self):
        manifest = manifest_from_dict(
            {
                "shards": 2,
                "generate": {"count": 6, "prefix": "t"},
                "defaults": {
                    "components": 4,
                    "look_back_window": 30,
                    "analysis_grace": 4,
                    "slo_sustain": 3,
                },
                "faults": [
                    {"tenant": "t-0002", "at": 40, "component": 1}
                ],
            }
        )
        supervisor = FleetSupervisor(manifest.fleet_config())
        for spec in manifest.tenant_specs():
            supervisor.add_tenant(spec)
        feed = FleetFeed(manifest, 60)
        for t in range(60):
            if t == 30:
                source = supervisor.shard_of("t-0002")
                supervisor.move_tenant("t-0002", 1 - source)
                assert supervisor.shard_of("t-0002") == 1 - source
            for tenant in manifest.tenants:
                assert supervisor.ingest(tenant, feed.batch(tenant, t))
        supervisor.close()
        assert not supervisor.failures
        assert list(supervisor.incidents) == ["t-0002"]
        assert len(supervisor.incidents["t-0002"]) == 1
        assert supervisor.incidents["t-0002"][0].violation_tick == 42
        # The relocated tenant saw every tick exactly once.
        assert supervisor.tenant_stats["t-0002"]["ticks"] == 60

    def test_add_shard_relocates_a_minority(self):
        manifest = manifest_from_dict(
            {
                "shards": 2,
                "generate": {"count": 12, "prefix": "t"},
                "defaults": {"components": 3},
            }
        )
        supervisor = FleetSupervisor(manifest.fleet_config())
        try:
            for spec in manifest.tenant_specs():
                supervisor.add_tenant(spec)
            before = dict(supervisor._routing)
            new_shard = supervisor.add_shard()
            after = dict(supervisor._routing)
            moved = [t for t in before if before[t] != after[t]]
            assert all(after[t] == new_shard for t in moved)
            assert len(moved) < len(before)
            assert not supervisor.failures
        finally:
            supervisor.close()


@pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="/dev/shm not available on this platform"
)
class TestSharedMemoryHygiene:
    @staticmethod
    def _segments():
        return set(os.listdir(SHM_DIR))

    def test_fleet_run_with_moves_leaks_no_segments(self):
        before = self._segments()
        manifest = manifest_from_dict(
            {
                "shards": 2,
                "generate": {"count": 6, "prefix": "t"},
                "defaults": {"components": 3},
            }
        )
        supervisor = FleetSupervisor(manifest.fleet_config())
        for spec in manifest.tenant_specs():
            supervisor.add_tenant(spec)
        feed = FleetFeed(manifest, 20)
        for t in range(20):
            if t == 10:
                tenant = manifest.tenants[0]
                supervisor.move_tenant(
                    tenant, 1 - supervisor.shard_of(tenant)
                )
            for tenant in manifest.tenants:
                supervisor.ingest(tenant, feed.batch(tenant, t))
        supervisor.close()
        leaked = self._segments() - before
        assert not leaked, f"fleet run leaked shm segments: {leaked}"

    def test_abandoned_export_is_unlinked_by_gc(self):
        from repro.monitoring.store import IngestBatch, IngestRun
        from repro.common.types import Metric
        import numpy as np

        store = MetricStore()
        store.ingest(
            IngestBatch(
                runs=[
                    IngestRun(
                        "c", Metric.CPU_USAGE, 0, np.arange(8.0)
                    )
                ],
                watermark=8,
            )
        )
        export = SharedStoreExport(store)
        name = export.handle.shm_name
        assert (SHM_DIR / name).exists()
        # Simulate a worker dying mid-attach: the export object is
        # dropped without close(); the finalizer must unlink anyway.
        del export
        gc.collect()
        assert not (SHM_DIR / name).exists(), (
            f"segment {name} survived garbage collection of its export"
        )

    def test_close_then_gc_does_not_double_unlink(self):
        from repro.monitoring.store import IngestBatch, IngestRun
        from repro.common.types import Metric
        import numpy as np

        store = MetricStore()
        store.ingest(
            IngestBatch(
                runs=[IngestRun("c", Metric.CPU_USAGE, 0, np.arange(4.0))],
                watermark=4,
            )
        )
        export = SharedStoreExport(store)
        export.close()
        export.close()  # idempotent
        del export
        gc.collect()  # finalizer already spent — must not raise
