"""Topology-guided diagnosis inside the fleet layer.

A tenant whose spec enables topology learning must name the same
culprits a full-fan-out diagnosis names on the identical mesh feed —
scoping changes the work, never the verdict — and its learned graph
must relocate wholesale with the tenant snapshot instead of re-learning
from scratch on the target shard.
"""

import pickle

import pytest

from repro.apps.mesh import MeshApplication
from repro.core.config import FChainConfig
from repro.faults.library import BottleneckFault
from repro.fleet.tenant import TenantRuntime, TenantSpec
from repro.monitoring.slo import LatencySLO
from repro.service.sources import SimFeed

SEED = 7
SERVICES = 20
FAULT_AT = 600
TICKS = 700


def _mesh():
    app = MeshApplication(seed=SEED, services=SERVICES, duration=1200)
    target = app.default_fault_target()
    app.inject(
        BottleneckFault(FAULT_AT, target, cap=app.bottleneck_cap(target))
    )
    return app, target


def _spec(app, config, *, halflife=None, origin=None):
    return TenantSpec(
        tenant="mesh",
        detector=LatencySLO(app.slo_threshold, sustain=10),
        config=config,
        seed=SEED,
        topology_halflife=halflife,
        origin=origin,
    )


def _run(runtime, app):
    incidents = []
    for batch in SimFeed(app, duration=TICKS):
        for trigger in runtime.process(batch):
            incidents.append(runtime.diagnose(trigger))
    return incidents


@pytest.fixture(scope="module")
def scoped_and_full():
    app, target = _mesh()
    scoped_rt = TenantRuntime(
        _spec(
            app,
            FChainConfig(topology_mode="neighborhood", topology_top_k=10),
            halflife=300.0,
            origin=app.gateway,
        )
    )
    scoped = _run(scoped_rt, app)

    app2, _ = _mesh()
    full_rt = TenantRuntime(_spec(app2, FChainConfig()))
    full = _run(full_rt, app2)
    return scoped_rt, scoped, full_rt, full, target


class TestFleetTopologyParity:
    def test_scoped_tenant_matches_full_fanout(self, scoped_and_full):
        scoped_rt, scoped, full_rt, full, target = scoped_and_full
        assert len(scoped) == len(full) == 1
        left, right = scoped[0], full[0]
        assert left.violation_tick == right.violation_tick
        assert left.diagnosis.faulty == right.diagnosis.faulty
        assert target in left.diagnosis.faulty
        assert left.diagnosis.chain.links == right.diagnosis.chain.links

    def test_scoped_tenant_analyzed_strict_subset(self, scoped_and_full):
        scoped_rt, scoped, *_ = scoped_and_full
        diagnosis = scoped[0].diagnosis
        assert not diagnosis.escalated
        assert len(diagnosis.analyzed) == 10
        assert diagnosis.analyzed < frozenset(scoped_rt.store.components)

    def test_tenant_without_halflife_learns_nothing(self, scoped_and_full):
        _, _, full_rt, _, _ = scoped_and_full
        assert full_rt.topology is None
        assert full_rt.fchain.master.topology is None

    def test_topology_relocates_with_snapshot(self, scoped_and_full):
        scoped_rt, *_ = scoped_and_full
        snapshot = pickle.loads(pickle.dumps(scoped_rt.export_state()))
        restored = TenantRuntime.from_state(snapshot)
        try:
            original = scoped_rt.topology.graph()
            relocated = restored.topology.graph()
            assert list(relocated.edges(data="weight")) == list(
                original.edges(data="weight")
            )
            # Diagnosis on the target shard uses the relocated graph.
            assert restored.fchain.master.topology is restored.topology
        finally:
            scoped_rt.release()
