"""A fleet of one tenant is the single-app pipeline, bit for bit.

The acceptance criterion of the fleet layer: sharding must be pure
plumbing. One tenant behind the supervisor → shard worker → tenant
runtime path must produce the same incident — same violation tick, same
``Diagnosis`` verdict, chain and skips — as ``OnlinePipeline`` consuming
the identical feed.
"""

import pytest

from repro.core.config import FChainConfig
from repro.eval.bench import synthetic_store
from repro.fleet import FleetConfig, FleetSupervisor, TenantSpec
from repro.monitoring.slo import LatencySLO
from repro.service import OnlinePipeline, StoreReplayFeed

SAMPLES = 1_500
FAULT_LEAD = 40
SEED = 7


@pytest.fixture(scope="module")
def faulty_store():
    return synthetic_store(
        samples=SAMPLES, components=4, metrics=2, seed=SEED,
        fault_lead=FAULT_LEAD,
    )


def _performance(store):
    onset = store.end - FAULT_LEAD + 5
    return {
        t: (0.5 if t >= onset else 0.01)
        for t in range(store.start, store.end)
    }


def _pipeline_incident(store):
    feed = StoreReplayFeed(store, performance=_performance(store))
    pipeline = OnlinePipeline(feed, LatencySLO(0.1, sustain=5), seed=SEED)
    incidents = pipeline.run()
    assert len(incidents) == 1 and not pipeline.failures
    return incidents[0]


def _fleet_incident(store, backend="thread"):
    supervisor = FleetSupervisor(FleetConfig(shards=1, backend=backend))
    try:
        supervisor.add_tenant(
            TenantSpec(
                tenant="only",
                detector=LatencySLO(0.1, sustain=5),
                config=FChainConfig(),
                seed=SEED,
            )
        )
        for batch in StoreReplayFeed(
            store, performance=_performance(store)
        ):
            assert supervisor.ingest("only", batch)
    finally:
        supervisor.close()
    assert not supervisor.failures
    incidents = supervisor.incidents.get("only", [])
    assert len(incidents) == 1
    return incidents[0]


class TestFleetOfOne:
    def test_identical_to_online_pipeline(self, faulty_store):
        baseline = _pipeline_incident(faulty_store)
        fleet = _fleet_incident(faulty_store)
        assert fleet.violation_tick == baseline.violation_tick
        assert fleet.dispatched_tick == baseline.dispatched_tick
        assert fleet.quality == baseline.quality
        left, right = fleet.diagnosis, baseline.diagnosis
        assert left.faulty == right.faulty
        assert "c0" in left.faulty
        assert left.external_factor == right.external_factor
        assert left.skipped == right.skipped
        assert left.chain.links == right.chain.links

    def test_process_backend_matches_too(self, faulty_store):
        from repro.core.engine import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        baseline = _pipeline_incident(faulty_store)
        fleet = _fleet_incident(faulty_store, backend="process")
        assert fleet.violation_tick == baseline.violation_tick
        assert fleet.diagnosis.faulty == baseline.diagnosis.faulty
        assert (
            fleet.diagnosis.chain.links == baseline.diagnosis.chain.links
        )
