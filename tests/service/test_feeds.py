"""Tests for the online loop's metric feeds."""

import math

import pytest

from repro.common.errors import ReproError
from repro.common.types import Metric, MetricSample
from repro.monitoring.quality import DataQualityPolicy
from repro.monitoring.store import MetricStore
from repro.service.sources import (
    CallableFeed,
    StoreReplayFeed,
    TickBatch,
    load_performance_csv,
    save_performance_csv,
)


def _recorded_store():
    # fill="none" keeps the hole a hole — the default policy would
    # interpolate a single missing tick away.
    store = MetricStore(policy=DataQualityPolicy(fill="none"))
    for t in range(6):
        if t == 3:
            continue  # an unfillable gap at t=3
        store.ingest("web", Metric.CPU_USAGE, t, 10.0 + t)
        store.ingest("db", Metric.CPU_USAGE, t, 20.0 + t)
    store.advance_to(6)
    return store


class TestStoreReplayFeed:
    def test_replays_every_tick(self):
        feed = StoreReplayFeed(_recorded_store())
        batches = list(feed)
        assert [b.time for b in batches] == [0, 1, 2, 3, 4, 5]

    def test_gaps_replay_as_missing_samples(self):
        batches = list(StoreReplayFeed(_recorded_store()))
        assert batches[3].samples == []  # the gap carries nothing
        assert len(batches[2].samples) == 2
        assert all(not math.isnan(s.value) for b in batches for s in b.samples)

    def test_performance_mapping(self):
        feed = StoreReplayFeed(_recorded_store(), performance={2: 0.5})
        batches = list(feed)
        assert batches[2].performance == 0.5
        assert batches[1].performance is None

    def test_round_trips_through_pipeline_store(self):
        """Replaying a clean recording reproduces the recorded values."""
        source = _recorded_store()
        target = MetricStore(policy=DataQualityPolicy(fill="none"))
        for batch in StoreReplayFeed(source):
            for sample in batch.samples:
                target.ingest(
                    sample.component, sample.metric, sample.time, sample.value
                )
        target.advance_to(source.end)
        for component in source.components:
            for metric in source.metrics_for(component):
                original = source.series(component, metric).values
                replayed = target.series(component, metric).values
                assert len(original) == len(replayed)
                for a, b in zip(original, replayed):
                    assert (math.isnan(a) and math.isnan(b)) or a == b


class TestCallableFeed:
    def test_yields_until_none(self):
        batches = [TickBatch(time=0), TickBatch(time=1), None]
        feed = CallableFeed(lambda: batches.pop(0))
        assert [b.time for b in feed] == [0, 1]


class TestPerformanceCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "perf.csv"
        performance = {0: 0.01, 5: 0.2, 2: 0.05}
        save_performance_csv(path, performance)
        assert load_performance_csv(path) == performance

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "perf.csv"
        path.write_text("tick,latency\n0,0.1\n")
        with pytest.raises(ReproError):
            load_performance_csv(path)

    def test_rejects_bad_row(self, tmp_path):
        path = tmp_path / "perf.csv"
        path.write_text("time,value\n0,not-a-number\n")
        with pytest.raises(ReproError):
            load_performance_csv(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "perf.csv"
        path.write_text("time,value\n")
        with pytest.raises(ReproError):
            load_performance_csv(path)


class TestSimFeed:
    def test_drives_application(self):
        from repro.apps.rubis import RubisApplication
        from repro.service.sources import SimFeed

        app = RubisApplication(seed=1, duration=600)
        feed = SimFeed(app, duration=30)
        batches = list(feed)
        assert len(batches) == 30
        assert [b.time for b in batches] == list(range(30))
        assert all(b.performance is not None for b in batches)
        components = {s.component for s in batches[-1].samples}
        assert {"web", "app1", "app2", "db"} <= components
        assert all(
            isinstance(s, MetricSample) for s in batches[-1].samples
        )
