"""End-to-end online localization against the real diagnosis engine.

One module-scoped synthetic store (step fault on ``c0`` near the end)
drives every test: the online loop must raise exactly one incident
naming the culprit, the verdict must match what the offline
``FChain.localize`` entry point produces on the same clean data, and
the thread and process executors must agree.
"""

import pytest

from repro.core.config import FChainConfig
from repro.core.fchain import FChain
from repro.eval.bench import synthetic_store
from repro.monitoring.slo import LatencySLO
from repro.service import OnlinePipeline, StoreReplayFeed

SAMPLES = 1_500
FAULT_LEAD = 40


@pytest.fixture(scope="module")
def faulty_store():
    return synthetic_store(
        samples=SAMPLES, components=4, metrics=2, seed=7,
        fault_lead=FAULT_LEAD,
    )


def _performance(store):
    """Healthy latency until the fault manifests, then a breach."""
    onset = store.end - FAULT_LEAD + 5
    return {
        t: (0.5 if t >= onset else 0.01)
        for t in range(store.start, store.end)
    }


def _run_pipeline(store, **kwargs):
    feed = StoreReplayFeed(store, performance=_performance(store))
    pipeline = OnlinePipeline(
        feed, LatencySLO(0.1, sustain=5), seed=7, **kwargs
    )
    incidents = pipeline.run()
    return pipeline, incidents


class TestOnlineLocalization:
    def test_one_incident_with_correct_culprit(self, faulty_store):
        pipeline, incidents = _run_pipeline(faulty_store)
        assert pipeline.triggered == 1
        assert pipeline.dropped == 0
        assert not pipeline.failures
        assert len(incidents) == 1
        assert "c0" in incidents[0].faulty
        assert incidents[0].quality == "full"

    def test_online_matches_offline_verdict(self, faulty_store):
        """The loop's verdict is bit-identical to offline localization."""
        _, incidents = _run_pipeline(faulty_store)
        incident = incidents[0]
        offline_engine = FChain(FChainConfig(), None, seed=7)
        try:
            offline = offline_engine.localize(
                faulty_store, violation_time=incident.violation_tick
            )
        finally:
            offline_engine.close()
        online = incident.diagnosis
        assert online.faulty == offline.faulty
        assert online.external_factor == offline.external_factor
        assert online.skipped == offline.skipped
        assert online.chain.links == offline.chain.links

    def test_thread_and_process_executors_agree(self, faulty_store):
        verdicts = {}
        for executor in ("thread", "process"):
            _, incidents = _run_pipeline(
                faulty_store,
                config=FChainConfig(executor=executor),
                jobs=2,
            )
            assert len(incidents) == 1
            verdicts[executor] = (
                incidents[0].faulty,
                incidents[0].violation_tick,
                incidents[0].diagnosis.external_factor,
            )
        assert verdicts["thread"] == verdicts["process"]
