"""Dispatch semantics of the online pipeline.

These tests stub the diagnosis engine (``pipeline.fchain.localize``) so
they exercise only the loop's own machinery — edge-triggered dispatch,
cooldown dedup, bounded-queue shedding, graceful drain and the
ingest-never-blocks invariant — deterministically and in milliseconds.
"""

import threading
import time

import pytest

from repro.common.errors import ReproError
from repro.common.types import Metric, MetricSample
from repro.core.config import FChainConfig
from repro.core.topology import OnlineTopology
from repro.monitoring.slo import LatencySLO
from repro.service import CallbackSink, JsonlSink, OnlinePipeline, TickBatch

#: Small grace so triggers dispatch after two more ticks.
GRACE = 2


class FakeDiagnosis:
    """The minimal surface an Incident reads off a diagnosis."""

    faulty = frozenset({"db"})
    external_factor = False
    skipped = frozenset()
    latency_seconds = 0.001
    confidence = "full"


class BlockingLocalize:
    """A localize stub the test can hold open and release."""

    def __init__(self):
        self.started = threading.Semaphore(0)
        self.release = threading.Event()
        self.calls = []

    def __call__(self, store, violation_time=None, origin=None):
        self.calls.append(violation_time)
        self.started.release()
        assert self.release.wait(10), "test never released the stub"
        return FakeDiagnosis()


def make_pipeline(**overrides):
    settings = dict(
        analysis_grace=GRACE, service_cooldown=5, service_queue_depth=2
    )
    settings.update(overrides.pop("settings", {}))
    detector = overrides.pop("detector", None) or LatencySLO(0.1, sustain=1)
    return OnlinePipeline(
        iter(()), detector, config=FChainConfig(**settings), **overrides
    )


def drive(pipeline, performance, start=0):
    """Feed one empty batch per value of the performance signal."""
    for offset, value in enumerate(performance):
        pipeline.process(TickBatch(time=start + offset, performance=value))
    return start + len(performance)


class TestEdgeTriggeredDispatch:
    def test_one_trigger_per_sustained_violation(self):
        pipeline = make_pipeline()
        pipeline.fchain.localize = lambda store, violation_time=None, origin=None: (
            FakeDiagnosis()
        )
        # 30 consecutive violating ticks: one rising edge, one incident,
        # no matter how long the violation lasts.
        drive(pipeline, [0.01] * 5 + [1.0] * 30 + [0.01] * 5)
        pipeline.close()
        assert pipeline.triggered == 1
        assert len(pipeline.incidents) == 1
        assert pipeline.incidents[0].violation_tick == 5
        assert pipeline.incidents[0].faulty == ["db"]

    def test_incident_waits_for_grace_data(self):
        pipeline = make_pipeline()
        dispatched = []
        pipeline.fchain.localize = (
            lambda store, violation_time=None, origin=None: dispatched.append(store.end)
            or FakeDiagnosis()
        )
        end = drive(pipeline, [0.01, 0.01, 1.0, 1.0, 1.0, 1.0, 1.0])
        pipeline.close()
        assert pipeline.incidents[0].violation_tick == 2
        # Dispatch waited for the post-violation grace window.
        assert pipeline.incidents[0].dispatched_tick >= 2 + GRACE
        assert dispatched and dispatched[0] >= 2 + GRACE + 1
        assert end == 7

    def test_cooldown_folds_flapping(self):
        pipeline = make_pipeline(settings={"service_cooldown": 10})
        pipeline.fchain.localize = lambda store, violation_time=None, origin=None: (
            FakeDiagnosis()
        )
        # Two rising edges 4 ticks apart — inside the 10-tick cooldown —
        # then a third edge well outside it.
        signal = [1.0, 1.0, 0.01, 0.01] + [1.0, 0.01] + [0.01] * 12 + [1.0]
        drive(pipeline, signal)
        pipeline.close()
        assert pipeline.triggered == 2
        assert [i.violation_tick for i in pipeline.incidents] == [0, 18]

    def test_separate_incidents_after_cooldown(self):
        pipeline = make_pipeline(settings={"service_cooldown": 3})
        pipeline.fchain.localize = lambda store, violation_time=None, origin=None: (
            FakeDiagnosis()
        )
        drive(pipeline, [1.0, 0.01, 0.01, 0.01, 1.0, 0.01, 0.01, 0.01])
        pipeline.close()
        assert pipeline.triggered == 2
        assert len(pipeline.incidents) == 2


class TestBackpressure:
    def test_queue_full_sheds_with_counted_drop(self):
        blocker = BlockingLocalize()
        pipeline = make_pipeline(
            settings={"service_cooldown": 0, "service_queue_depth": 1}
        )
        pipeline.fchain.localize = blocker
        # First incident: dispatched, worker picks it up and blocks.
        t = drive(pipeline, [1.0, 0.01, 0.01, 0.01])
        assert blocker.started.acquire(timeout=10)
        # Second incident queues (filling the depth-1 queue), third is shed.
        t = drive(pipeline, [1.0, 0.01, 0.01, 0.01], start=t)
        t = drive(pipeline, [1.0, 0.01, 0.01, 0.01], start=t)
        drive(pipeline, [0.01] * 2, start=t)
        assert pipeline.triggered == 3
        assert pipeline.dropped == 1
        blocker.release.set()
        pipeline.close()
        assert len(pipeline.incidents) == 2  # the shed trigger is gone

    def test_ingest_never_blocks_on_diagnosis(self):
        blocker = BlockingLocalize()
        pipeline = make_pipeline(settings={"service_cooldown": 0})
        pipeline.fchain.localize = blocker
        t = drive(pipeline, [1.0, 0.01, 0.01, 0.01])
        assert blocker.started.acquire(timeout=10)
        # The worker holds the slave for the whole "diagnosis"; the loop
        # must keep ticking at full speed regardless.
        before = time.monotonic()
        t = drive(pipeline, [0.01] * 200, start=t)
        elapsed = time.monotonic() - before
        assert pipeline.ticks == 204
        assert elapsed < 5.0  # 200 empty ticks, never awaiting the worker
        assert pipeline.warm_sync_skipped > 0
        blocker.release.set()
        pipeline.close()
        assert len(pipeline.incidents) == 1


class TestDrain:
    def test_close_flushes_pending_triggers(self):
        pipeline = make_pipeline()
        pipeline.fchain.localize = lambda store, violation_time=None, origin=None: (
            FakeDiagnosis()
        )
        # Violation on the very last tick: the grace data never arrives.
        drive(pipeline, [0.01, 0.01, 1.0])
        assert pipeline.triggered == 1
        assert not pipeline.incidents
        pipeline.close()
        assert len(pipeline.incidents) == 1
        assert pipeline.incidents[0].violation_tick == 2

    def test_close_waits_for_inflight_diagnosis(self):
        blocker = BlockingLocalize()
        pipeline = make_pipeline()
        pipeline.fchain.localize = blocker
        drive(pipeline, [1.0] + [0.01] * 4)
        assert blocker.started.acquire(timeout=10)
        closer = threading.Thread(target=pipeline.close)
        closer.start()
        closer.join(timeout=0.2)
        assert closer.is_alive()  # drain waits on the diagnosis
        blocker.release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert len(pipeline.incidents) == 1

    def test_close_is_idempotent_and_process_after_close_raises(self):
        pipeline = make_pipeline()
        pipeline.close()
        pipeline.close()
        with pytest.raises(ReproError):
            pipeline.process(TickBatch(time=0))

    def test_context_manager_closes(self):
        with make_pipeline() as pipeline:
            drive(pipeline, [0.01] * 3)
        assert pipeline._closed


class TestFailureIsolation:
    def test_diagnosis_error_keeps_loop_alive(self):
        pipeline = make_pipeline(settings={"service_cooldown": 0})

        def explode(store, violation_time=None, origin=None):
            raise RuntimeError("slave fell over")

        pipeline.fchain.localize = explode
        t = drive(pipeline, [1.0, 0.01, 0.01, 0.01])
        drive(pipeline, [1.0, 0.01, 0.01, 0.01], start=t)
        pipeline.close()
        assert not pipeline.incidents
        assert len(pipeline.failures) == 2
        assert all(
            isinstance(error, RuntimeError) for _, error in pipeline.failures
        )

    def test_sink_error_recorded_not_raised(self):
        pipeline = make_pipeline(
            sinks=[CallbackSink(lambda incident: 1 / 0)]
        )
        pipeline.fchain.localize = lambda store, violation_time=None, origin=None: (
            FakeDiagnosis()
        )
        drive(pipeline, [1.0] + [0.01] * 4)
        pipeline.close()
        assert len(pipeline.incidents) == 1
        assert len(pipeline.failures) == 1


class TestSinks:
    def test_jsonl_sink_written_and_closed(self, tmp_path):
        import json

        path = tmp_path / "incidents.jsonl"
        sink = JsonlSink(path)
        pipeline = make_pipeline(sinks=[sink])
        pipeline.fchain.localize = lambda store, violation_time=None, origin=None: (
            FakeDiagnosis()
        )
        drive(pipeline, [1.0] + [0.01] * 4)
        pipeline.close()
        assert sink._writer.closed
        lines = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(lines) == 1
        assert lines[0]["violation_tick"] == 0
        assert lines[0]["faulty"] == ["db"]
        assert lines[0]["quality"] == "full"

    def test_store_without_policy_rejected(self):
        from repro.monitoring.store import MetricStore

        with pytest.raises(ReproError):
            make_pipeline(store=MetricStore())


class TestTopologyLearning:
    def test_pipeline_learns_edges_from_batches(self):
        topology = OnlineTopology(halflife=10.0)
        pipeline = make_pipeline(topology=topology, origin="gw")
        for t in range(40):
            # Correlated network_out co-movement corroborates the edge
            # the traffic counts create.
            load = 30.0 + (t % 7)
            pipeline.process(
                TickBatch(
                    time=t,
                    samples=[
                        MetricSample("gw", Metric.NETWORK_OUT, t, load),
                        MetricSample("a", Metric.NETWORK_OUT, t, load - 2.0),
                    ],
                    performance=0.01,
                    edges={("gw", "a"): 5.0},
                )
            )
        pipeline.close()
        assert pipeline.topology is topology
        assert topology.confidence("gw", "a") > 0.5
        assert topology.graph().has_edge("gw", "a")
        # The graph feeds the master so a diagnosis can scope with it.
        assert pipeline.fchain.master.topology is topology

    def test_pipeline_without_topology_learns_nothing(self):
        pipeline = make_pipeline()
        pipeline.process(
            TickBatch(time=0, performance=0.01, edges={("gw", "a"): 5.0})
        )
        pipeline.close()
        assert pipeline.topology is None
