"""Tests for deterministic RNG helpers."""

from repro.common.rng import spawn_rng, stable_seed


def test_stable_seed_deterministic():
    assert stable_seed("a", 1) == stable_seed("a", 1)


def test_stable_seed_distinguishes_parts():
    assert stable_seed("a", 1) != stable_seed("a", 2)
    assert stable_seed("ab") != stable_seed("a", "b")


def test_stable_seed_non_negative():
    for parts in [("x",), ("y", 3), (0,)]:
        assert stable_seed(*parts) >= 0


def test_spawn_rng_reproducible_stream():
    a = spawn_rng("stream", 5).random(4)
    b = spawn_rng("stream", 5).random(4)
    assert (a == b).all()


def test_spawn_rng_independent_streams():
    a = spawn_rng("stream", 1).random(4)
    b = spawn_rng("stream", 2).random(4)
    assert (a != b).any()
