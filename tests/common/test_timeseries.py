"""Tests for the TimeSeries container."""

import numpy as np
import pytest

from repro.common.timeseries import TimeSeries, require_same_grid


class TestConstruction:
    def test_from_values(self):
        ts = TimeSeries.from_values([1.0, 2.0, 3.0], start=5)
        assert len(ts) == 3
        assert ts.start == 5
        assert ts.end == 8

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            TimeSeries(np.zeros((2, 2)))

    def test_values_coerced_to_float(self):
        ts = TimeSeries(np.array([1, 2, 3]))
        assert ts.values.dtype == float

    def test_iteration(self):
        ts = TimeSeries.from_values([1, 2, 3])
        assert list(ts) == [1.0, 2.0, 3.0]

    def test_times_align(self):
        ts = TimeSeries.from_values([4, 5], start=10)
        assert list(ts.times) == [10, 11]

    def test_extended(self):
        ts = TimeSeries.from_values([1, 2], start=3)
        longer = ts.extended([4, 5])
        assert list(longer.values) == [1, 2, 4, 5]
        assert longer.start == 3
        assert len(ts) == 2  # original untouched


class TestAccess:
    def test_at(self):
        ts = TimeSeries.from_values([10, 20, 30], start=100)
        assert ts.at(101) == 20

    def test_at_out_of_range(self):
        ts = TimeSeries.from_values([10], start=0)
        with pytest.raises(IndexError):
            ts.at(5)

    def test_index_of(self):
        ts = TimeSeries.from_values([0, 1, 2], start=7)
        assert ts.index_of(8) == 1

    def test_index_of_out_of_range(self):
        ts = TimeSeries.from_values([0], start=7)
        with pytest.raises(IndexError):
            ts.index_of(6)


class TestWindowing:
    def test_window_basic(self):
        ts = TimeSeries.from_values(list(range(10)), start=0)
        piece = ts.window(3, 6)
        assert list(piece.values) == [3, 4, 5]
        assert piece.start == 3

    def test_window_clips_left(self):
        ts = TimeSeries.from_values(list(range(5)), start=10)
        piece = ts.window(0, 12)
        assert piece.start == 10
        assert len(piece) == 2

    def test_window_clips_right(self):
        ts = TimeSeries.from_values(list(range(5)), start=0)
        piece = ts.window(3, 99)
        assert list(piece.values) == [3, 4]

    def test_empty_window(self):
        ts = TimeSeries.from_values(list(range(5)))
        assert len(ts.window(7, 9)) == 0

    def test_around(self):
        ts = TimeSeries.from_values(list(range(20)))
        piece = ts.around(10, 2)
        assert list(piece.values) == [8, 9, 10, 11, 12]

    def test_around_clipped_at_edges(self):
        ts = TimeSeries.from_values(list(range(5)))
        piece = ts.around(0, 3)
        assert piece.start == 0
        assert len(piece) == 4


class TestStatistics:
    def test_mean_std(self):
        ts = TimeSeries.from_values([2.0, 4.0])
        assert ts.mean() == pytest.approx(3.0)
        assert ts.std() == pytest.approx(1.0)

    def test_empty_mean(self):
        assert TimeSeries(np.empty(0)).mean() == 0.0

    def test_slope_of_line(self):
        ts = TimeSeries.from_values([2 * i for i in range(20)])
        assert ts.slope_at(10) == pytest.approx(2.0)

    def test_slope_of_constant(self):
        ts = TimeSeries.from_values([5.0] * 20)
        assert ts.slope_at(10) == pytest.approx(0.0)

    def test_slope_short_series(self):
        ts = TimeSeries.from_values([1.0])
        assert ts.slope_at(0) == 0.0


class TestGrid:
    def test_same_grid_ok(self):
        a = TimeSeries.from_values([1, 2], start=0)
        b = TimeSeries.from_values([3, 4], start=0)
        require_same_grid(a, b)

    def test_different_grid_raises(self):
        a = TimeSeries.from_values([1, 2], start=0)
        b = TimeSeries.from_values([3, 4], start=1)
        with pytest.raises(ValueError):
            require_same_grid(a, b)
