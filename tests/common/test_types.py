"""Tests for shared types."""

from repro.common.types import METRIC_NAMES, Metric, MetricSample


def test_six_metrics():
    assert len(METRIC_NAMES) == 6


def test_metric_str():
    assert str(Metric.CPU_USAGE) == "cpu_usage"


def test_metric_names_order_stable():
    assert METRIC_NAMES[0] is Metric.CPU_USAGE
    assert METRIC_NAMES[-1] is Metric.DISK_WRITE


def test_metric_sample_frozen():
    sample = MetricSample("web", Metric.CPU_USAGE, 3, 42.0)
    assert sample.component == "web"
    assert sample.value == 42.0
