"""Tests for synthetic workload traces."""


from repro.workloads.traces import TraceSpec, clarknet_like, diurnal_trace, nasa_like


class TestDiurnalTrace:
    def test_length_and_nonnegative(self):
        trace = diurnal_trace(500, TraceSpec(), seed=1)
        assert len(trace) == 500
        assert (trace >= 0).all()

    def test_deterministic(self):
        a = diurnal_trace(300, TraceSpec(), seed=5)
        b = diurnal_trace(300, TraceSpec(), seed=5)
        assert (a == b).all()

    def test_seed_changes_trace(self):
        a = diurnal_trace(300, TraceSpec(), seed=1)
        b = diurnal_trace(300, TraceSpec(), seed=2)
        assert (a != b).any()

    def test_mean_near_base_rate(self):
        trace = diurnal_trace(5000, TraceSpec(base_rate=60.0), seed=3)
        assert 45 < trace.mean() < 80

    def test_diurnal_cycle_visible(self):
        spec = TraceSpec(
            base_rate=100, diurnal_amplitude=0.5, period=600,
            burst_prob=0.0, noise_sigma=0.0, walk_sigma=0.0,
        )
        trace = diurnal_trace(1200, spec, seed=4)
        # Peak-to-trough swing should approach the configured amplitude.
        assert trace.max() / trace.min() > 1.8

    def test_bursts_create_peaks(self):
        calm = TraceSpec(burst_prob=0.0, noise_sigma=0.0, walk_sigma=0.0,
                         diurnal_amplitude=0.0)
        bursty = TraceSpec(burst_prob=0.05, burst_scale=2.0, noise_sigma=0.0,
                           walk_sigma=0.0, diurnal_amplitude=0.0)
        a = diurnal_trace(1000, calm, seed=6)
        b = diurnal_trace(1000, bursty, seed=6)
        assert b.max() > 1.3 * a.max()


class TestNamedTraces:
    def test_nasa_like_shape(self):
        trace = nasa_like(1000, seed=1)
        assert len(trace) == 1000
        assert trace.mean() > 30

    def test_clarknet_like_denser(self):
        nasa = nasa_like(3000, seed=1, base_rate=60)
        clark = clarknet_like(3000, seed=1, base_rate=80)
        assert clark.mean() > nasa.mean()

    def test_distinct_streams(self):
        a = nasa_like(200, seed=1)
        b = clarknet_like(200, seed=1, base_rate=60)
        assert (a != b).any()
