"""Tests for the client workload generator."""

import numpy as np
import pytest

from repro.workloads.generator import ClientWorkload


class TestClientWorkload:
    def test_rate_lookup(self):
        wl = ClientWorkload(np.array([10.0, 20.0, 30.0]))
        assert wl.rate(1) == 20.0

    def test_rate_clamps_past_trace_end(self):
        wl = ClientWorkload(np.array([10.0, 20.0]))
        assert wl.rate(99) == 20.0
        assert wl.rate(-5) == 10.0

    def test_arrivals_follow_rate(self):
        wl = ClientWorkload(np.full(1000, 50.0), seed=1)
        samples = [wl.arrivals(t) for t in range(1000)]
        assert 45 < np.mean(samples) < 55

    def test_zero_rate_zero_arrivals(self):
        wl = ClientWorkload(np.zeros(10))
        assert wl.arrivals(0) == 0.0

    def test_deterministic_stream(self):
        a = ClientWorkload(np.full(10, 30.0), seed=3)
        b = ClientWorkload(np.full(10, 30.0), seed=3)
        assert [a.arrivals(t) for t in range(10)] == [
            b.arrivals(t) for t in range(10)
        ]

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ClientWorkload(np.array([]))
        with pytest.raises(ValueError):
            ClientWorkload(np.array([-1.0]))
        with pytest.raises(ValueError):
            ClientWorkload(np.zeros((2, 2)))

    def test_len(self):
        assert len(ClientWorkload(np.zeros(7))) == 7
