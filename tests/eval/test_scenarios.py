"""Tests for scenario definitions."""

import pytest

from repro.eval.scenarios import (
    SYSTEMS_TARGETS,
    all_scenarios,
    hadoop_scenarios,
    rubis_scenarios,
    scenario_by_name,
    systems_scenarios,
)


def test_paper_scenario_counts():
    assert len(rubis_scenarios()) == 5  # 3 single + 2 concurrent
    assert len(systems_scenarios()) == 5  # 3 single + 2 concurrent
    assert len(hadoop_scenarios()) == 3  # 3 concurrent


def test_all_scenarios_unique_names():
    names = [s.name for s in all_scenarios()]
    assert len(names) == len(set(names))


def test_lookup():
    scenario = scenario_by_name("rubis/cpuhog")
    assert scenario.app_name == "rubis"
    with pytest.raises(KeyError):
        scenario_by_name("nope")


def test_diskhog_uses_long_window():
    scenario = scenario_by_name("hadoop/conc_diskhog")
    assert scenario.look_back_window == 500


def test_campaigns_materialize():
    for scenario in all_scenarios():
        faults, t_inject, truth = scenario.campaign.materialize("seed")
        assert faults
        lo, hi = scenario.campaign.window
        assert lo <= t_inject < hi


def test_systems_targets_randomized():
    scenario = scenario_by_name("systems/memleak")
    targets = set()
    for seed in range(12):
        _, _, truth = scenario.campaign.materialize(seed)
        targets |= set(truth)
    assert len(targets) >= 3
    assert targets <= set(SYSTEMS_TARGETS)


def test_concurrent_campaigns_two_distinct_targets():
    scenario = scenario_by_name("systems/conc_memleak")
    for seed in range(5):
        _, _, truth = scenario.campaign.materialize(seed)
        assert len(truth) == 2


def test_app_factories_build():
    for scenario in all_scenarios():
        app = scenario.make_app(0)
        assert scenario.slo_component in app.components
