"""Tests for the benchmark regression gate (``repro.eval.regression``).

The gate must pass when current numbers match the baseline, fail when
throughput erodes or tail latency inflates past the tolerance band, and
refuse (rather than silently mis-compare) payloads with mismatched
schema versions or workload parameters.
"""

import json

import pytest

from repro.eval.bench import BENCH_SCHEMA_VERSION
from repro.eval.regression import (
    BaselineMismatch,
    RegressionCheck,
    check_against_baselines,
    compare_report,
    format_checks,
    load_baseline,
)


def _payload(**overrides):
    """A minimal bench payload in the committed BENCH_*.json shape."""
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "timestamp": "2026-08-05T00:00:00+00:00",
        "benchmark": "ingest",
        "samples": 2000,
        "components": 8,
        "metrics": 3,
        "scalar": {"ops_per_second": 100_000.0, "p99_ms": 2.0},
        "batched": {"ops_per_second": 1_600_000.0, "p99_ms": 0.5},
    }
    payload.update(overrides)
    return payload


class TestCompareReport:
    def test_identical_payloads_pass_every_check(self):
        checks = compare_report(_payload(), _payload())
        assert len(checks) == 4  # 2 sections x (ops + p99)
        assert all(c.ok for c in checks)
        assert {c.metric for c in checks} == {
            "ingest.scalar.ops_per_second",
            "ingest.scalar.p99_ms",
            "ingest.batched.ops_per_second",
            "ingest.batched.p99_ms",
        }
        assert all(c.ratio == pytest.approx(1.0) for c in checks)

    def test_throughput_drop_beyond_tolerance_fails(self):
        slow = _payload(
            batched={"ops_per_second": 700_000.0, "p99_ms": 0.5}
        )
        checks = compare_report(slow, _payload(), ops_tolerance=0.5)
        by_metric = {c.metric: c for c in checks}
        failed = by_metric["ingest.batched.ops_per_second"]
        assert not failed.ok
        assert failed.kind == "throughput"
        assert failed.limit == pytest.approx(800_000.0)
        # The other numbers still pass.
        assert by_metric["ingest.scalar.ops_per_second"].ok

    def test_throughput_drop_within_tolerance_passes(self):
        slower = _payload(
            batched={"ops_per_second": 900_000.0, "p99_ms": 0.5}
        )
        checks = compare_report(slower, _payload(), ops_tolerance=0.5)
        assert all(c.ok for c in checks)

    def test_p99_inflation_beyond_tolerance_fails(self):
        spiky = _payload(scalar={"ops_per_second": 100_000.0, "p99_ms": 6.0})
        checks = compare_report(spiky, _payload(), p99_tolerance=1.5)
        by_metric = {c.metric: c for c in checks}
        failed = by_metric["ingest.scalar.p99_ms"]
        assert not failed.ok
        assert failed.kind == "latency"
        assert failed.limit == pytest.approx(5.0)

    def test_inflated_baseline_fails_the_gate(self):
        # The acceptance demo: against a baseline claiming 100x the real
        # throughput, the fresh run must register as a regression.
        inflated = _payload(
            scalar={"ops_per_second": 10_000_000.0, "p99_ms": 2.0},
            batched={"ops_per_second": 160_000_000.0, "p99_ms": 0.5},
        )
        checks = compare_report(_payload(), inflated)
        failed = [c for c in checks if not c.ok]
        assert {c.metric for c in failed} == {
            "ingest.scalar.ops_per_second",
            "ingest.batched.ops_per_second",
        }

    def test_schema_version_mismatch_refused(self):
        stale = _payload(schema_version=BENCH_SCHEMA_VERSION - 1)
        with pytest.raises(BaselineMismatch, match="schema_version"):
            compare_report(_payload(), stale)
        with pytest.raises(BaselineMismatch, match="schema_version"):
            compare_report(stale, _payload())
        missing = _payload()
        del missing["schema_version"]
        with pytest.raises(BaselineMismatch, match="schema_version"):
            compare_report(missing, _payload())

    def test_workload_parameter_mismatch_refused(self):
        with pytest.raises(BaselineMismatch, match="samples"):
            compare_report(_payload(samples=4000), _payload())
        with pytest.raises(BaselineMismatch, match="benchmark"):
            compare_report(_payload(benchmark="other"), _payload())

    def test_ratio_of_zero_baseline_is_infinite(self):
        check = RegressionCheck(
            metric="m", kind="throughput", current=1.0, baseline=0.0,
            limit=0.0, ok=True,
        )
        assert check.ratio == float("inf")


class TestCheckAgainstBaselines:
    def test_matching_directory_passes(self, tmp_path):
        (tmp_path / "BENCH_ingest.json").write_text(json.dumps(_payload()))
        checks, missing = check_against_baselines(
            {"BENCH_ingest.json": _payload()}, tmp_path
        )
        assert missing == []
        assert len(checks) == 4 and all(c.ok for c in checks)

    def test_missing_baseline_is_surfaced_not_skipped(self, tmp_path):
        checks, missing = check_against_baselines(
            {"BENCH_new_thing.json": _payload()}, tmp_path
        )
        assert checks == []
        assert missing == ["BENCH_new_thing.json"]

    def test_load_baseline_reads_json(self, tmp_path):
        path = tmp_path / "BENCH_ingest.json"
        path.write_text(json.dumps(_payload()))
        assert load_baseline(path) == _payload()

    def test_committed_baselines_are_current_schema(self):
        # The baselines the CI gate compares against must always be
        # regenerated alongside schema bumps.
        import pathlib

        baseline_dir = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "baselines"
        )
        paths = sorted(baseline_dir.glob("BENCH_*.json"))
        assert paths, "no committed baselines found"
        for path in paths:
            payload = load_baseline(path)
            assert payload["schema_version"] == BENCH_SCHEMA_VERSION, path
            assert "timestamp" in payload, path


class TestFormatChecks:
    def test_table_marks_failures_and_counts(self):
        ok = RegressionCheck(
            metric="ingest.batched.ops_per_second", kind="throughput",
            current=100.0, baseline=100.0, limit=50.0, ok=True,
        )
        bad = RegressionCheck(
            metric="ingest.scalar.p99_ms", kind="latency",
            current=9.0, baseline=2.0, limit=5.0, ok=False,
        )
        text = format_checks([ok, bad])
        assert "FAIL ingest.scalar.p99_ms" in text
        assert "1/2 checks passed" in text
        assert "1 REGRESSION(S)" in text
        assert "min allowed 50.00" in text
        assert "max allowed 5.00" in text

    def test_empty_checks_message(self):
        assert "no comparable" in format_checks([])


class TestCliGate:
    def test_bench_check_passes_and_fails_end_to_end(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        run = [
            "bench", "--quick", "--json",
            "--samples", "600", "--components", "2", "--metrics", "1",
            "--repeats", "1",
            "--fleet-tenants", "20", "--fleet-shards", "2",
            # The gate mechanics are under test, not the mesh — skip
            # the canonical 100-service topology run.
            "--topology-services", "0",
        ]
        # First run produces the payloads that become the baselines.
        assert main(run) == 0
        capsys.readouterr()
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        for name in (
            "BENCH_ingest.json",
            "BENCH_incremental_engine.json",
            "BENCH_service_loop.json",
            "BENCH_http_ingest.json",
            "BENCH_fleet.json",
        ):
            (baseline_dir / name).write_text((tmp_path / name).read_text())

        # Gate against its own numbers with a wide band: must pass.
        assert main(run + ["--check", str(baseline_dir),
                           "--tolerance", "0.99",
                           "--p99-tolerance", "99"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out

        # Inflate the ingest baseline 1000x (well past even the wide
        # 0.99 tolerance band): the gate must fail.
        inflated = json.loads(
            (baseline_dir / "BENCH_ingest.json").read_text()
        )
        for section in ("scalar", "batched"):
            inflated[section]["ops_per_second"] *= 1000.0
        (baseline_dir / "BENCH_ingest.json").write_text(
            json.dumps(inflated)
        )
        assert main(run + ["--check", str(baseline_dir),
                           "--tolerance", "0.99",
                           "--p99-tolerance", "99"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_bench_check_fails_on_missing_baselines(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        empty = tmp_path / "no-baselines"
        empty.mkdir()
        code = main([
            "bench", "--quick", "--json",
            "--samples", "600", "--components", "2", "--metrics", "1",
            "--repeats", "1", "--check", str(empty),
            "--fleet-tenants", "20", "--fleet-shards", "2",
            # The gate mechanics are under test, not the mesh — skip
            # the canonical 100-service topology run.
            "--topology-services", "0",
        ])
        assert code == 1
        assert "no committed baseline" in capsys.readouterr().out
