"""Tests for the dependency-free SVG figure renderer."""

import pytest

from repro.eval.svgfig import SvgCanvas, line_figure, roc_figure, save_svg


class TestCanvas:
    def test_render_is_valid_svg_envelope(self):
        canvas = SvgCanvas(width=100, height=80)
        text = canvas.render()
        assert text.startswith("<svg")
        assert 'width="100"' in text
        assert text.rstrip().endswith("</svg>")

    def test_elements_rendered(self):
        canvas = SvgCanvas()
        canvas.line(0, 0, 10, 10)
        canvas.marker(5, 5, kind="square", color="#123456")
        canvas.text(1, 2, "hello <&>")
        text = canvas.render()
        assert "<line" in text
        assert "<rect" in text and "#123456" in text
        assert "hello &lt;&amp;&gt;" in text  # escaped

    def test_all_marker_kinds(self):
        canvas = SvgCanvas()
        for kind in ("circle", "square", "diamond", "triangle"):
            canvas.marker(10, 10, kind=kind)
        text = canvas.render()
        assert text.count("<circle") == 1
        assert text.count("<polygon") == 2


class TestRocFigure:
    def test_schemes_labelled(self):
        svg = roc_figure(
            {"FChain": (0.9, 0.95), "PAL": (0.5, 0.4)},
            title="Fig test",
        )
        assert "FChain" in svg and "PAL" in svg
        assert "recall" in svg and "precision" in svg
        assert "Fig test" in svg

    def test_distinct_colors(self):
        svg = roc_figure(
            {"a": (0.1, 0.1), "b": (0.2, 0.2)}, title="t"
        )
        assert "#1f77b4" in svg and "#d62728" in svg


class TestLineFigure:
    def test_series_and_markers(self):
        svg = line_figure(
            {"cpu": [(0, 1.0), (1, 2.0), (2, 1.5)]},
            title="series",
            markers={1: "onset"},
        )
        assert "<polyline" in svg
        assert "onset" in svg
        assert "stroke-dasharray" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_figure({}, title="x")

    def test_flat_series_no_crash(self):
        svg = line_figure({"flat": [(0, 5.0), (10, 5.0)]}, title="flat")
        assert "<polyline" in svg


def test_save_svg(tmp_path):
    path = tmp_path / "f.svg"
    save_svg(roc_figure({"x": (0.5, 0.5)}, title="t"), path)
    assert path.read_text().startswith("<svg")
