"""Edge-case tests for the campaign runner."""


from repro.apps.rubis import RubisApplication
from repro.eval.runner import POST_VIOLATION_MARGIN, execute_run, generate_runs
from repro.eval.scenarios import Scenario
from repro.faults.injector import FaultCampaign
from repro.faults.library import CpuHogFault, WorkloadSurge


def harmless_scenario():
    """A 'fault' that never violates the SLO (surge factor 1.0)."""
    return Scenario(
        "test/harmless",
        "rubis",
        lambda seed: RubisApplication(seed=seed, duration=1200),
        FaultCampaign(
            "test/harmless",
            lambda t, rng: [WorkloadSurge(t, factor=1.0)],
            (600, 700),
        ),
        slo_component="web",
        max_wait=120,
    )


def violent_scenario(max_wait=400):
    return Scenario(
        "test/violent",
        "rubis",
        lambda seed: RubisApplication(seed=seed, duration=1600),
        FaultCampaign(
            "test/violent",
            lambda t, rng: [CpuHogFault(t, "db")],
            (600, 700),
        ),
        slo_component="web",
        max_wait=max_wait,
    )


class TestExecuteRun:
    def test_no_violation_returns_none(self):
        assert execute_run(harmless_scenario(), 0) is None

    def test_post_violation_margin_recorded(self):
        record = execute_run(violent_scenario(), 0)
        assert record is not None
        assert (
            record.store.length
            >= record.violation_time + POST_VIOLATION_MARGIN
        )

    def test_max_wait_respected(self):
        scenario = harmless_scenario()
        record = execute_run(scenario, 1)
        assert record is None  # gave up within max_wait


class TestGenerateRuns:
    def test_gives_up_on_hopeless_scenario(self):
        runs = generate_runs(harmless_scenario(), 2, base_seed="x")
        assert runs == []

    def test_collects_requested_count(self):
        runs = generate_runs(violent_scenario(), 2, base_seed="x")
        assert len(runs) == 2
        assert runs[0].seed != runs[1].seed
