"""Tests for the ASCII plotting helpers."""

import numpy as np

from repro.common.timeseries import TimeSeries
from repro.eval.plotting import sparkline, strip_chart


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(range(500), width=80)) == 80

    def test_short_series_full_length(self):
        assert len(sparkline([1, 2, 3], width=80)) == 3

    def test_flat_series_low_glyphs(self):
        line = sparkline([5.0] * 20)
        assert set(line) == {" "}

    def test_monotone_series_increases(self):
        line = sparkline(np.linspace(0, 1, 40))
        assert line[0] == " "
        assert line[-1] == "@"

    def test_empty(self):
        assert sparkline([]) == ""


class TestStripChart:
    def test_contains_extremes_and_axis(self):
        series = TimeSeries(np.linspace(10, 90, 200), start=100)
        chart = strip_chart(series, title="ramp")
        assert "ramp" in chart
        assert "90.0" in chart and "10.0" in chart
        assert "t=[100, 300)" in chart

    def test_markers_rendered(self):
        series = TimeSeries(np.zeros(100), start=0)
        chart = strip_chart(series, markers={50: "^"})
        assert "^=t50" in chart

    def test_out_of_range_marker_ignored(self):
        series = TimeSeries(np.zeros(100), start=0)
        chart = strip_chart(series, markers={500: "^"})
        assert "^" not in chart

    def test_empty_series(self):
        assert strip_chart(TimeSeries(np.empty(0)), title="x") == "x"

    def test_row_count(self):
        series = TimeSeries(np.arange(50.0))
        chart = strip_chart(series, height=6)
        rows = [l for l in chart.splitlines() if l.strip().startswith("│")]
        assert len(rows) == 6
