"""Tests for precision/recall accounting."""

import pytest

from repro.eval.metrics import PrecisionRecall, RocPoint


class TestPrecisionRecall:
    def test_perfect(self):
        pr = PrecisionRecall()
        pr.update({"a"}, {"a"})
        assert pr.precision == 1.0
        assert pr.recall == 1.0
        assert pr.f1 == 1.0

    def test_false_positive(self):
        pr = PrecisionRecall()
        pr.update({"a", "b"}, {"a"})
        assert pr.precision == pytest.approx(0.5)
        assert pr.recall == 1.0

    def test_false_negative(self):
        pr = PrecisionRecall()
        pr.update({"a"}, {"a", "b"})
        assert pr.precision == 1.0
        assert pr.recall == pytest.approx(0.5)

    def test_empty_pinpointing(self):
        pr = PrecisionRecall()
        pr.update(set(), {"a"})
        assert pr.precision == 0.0
        assert pr.recall == 0.0

    def test_empty_ground_truth_fp_only(self):
        pr = PrecisionRecall()
        pr.update({"a"}, set())
        assert pr.false_positives == 1
        assert pr.recall == 0.0

    def test_accumulates_over_runs(self):
        pr = PrecisionRecall()
        pr.update({"a"}, {"a"})
        pr.update({"b"}, {"a"})
        assert pr.runs == 2
        assert pr.true_positives == 1
        assert pr.false_positives == 1
        assert pr.false_negatives == 1

    def test_merged(self):
        a = PrecisionRecall(1, 2, 3, 4)
        b = PrecisionRecall(10, 20, 30, 40)
        merged = a.merged(b)
        assert merged.true_positives == 11
        assert merged.runs == 44

    def test_str(self):
        pr = PrecisionRecall()
        pr.update({"a"}, {"a"})
        assert "P=1.00" in str(pr)

    def test_f1_zero_when_both_zero(self):
        assert PrecisionRecall().f1 == 0.0


def test_roc_point():
    point = RocPoint(0.5, 0.9, 0.8)
    assert point.threshold == 0.5
