"""Tests for report formatting."""

from repro.eval.metrics import PrecisionRecall, RocPoint
from repro.eval.report import (
    format_roc_series,
    format_scheme_table,
    format_sensitivity_table,
)


def pr(tp, fp, fn):
    return PrecisionRecall(tp, fp, fn, runs=1)


def test_scheme_table_contains_all_cells():
    table = format_scheme_table(
        "Fig. X",
        {
            "memleak": {"FChain": pr(9, 1, 1), "PAL": pr(5, 5, 5)},
            "cpuhog": {"FChain": pr(8, 0, 2)},
        },
    )
    assert "Fig. X" in table
    assert "FChain" in table and "PAL" in table
    assert "P=0.90" in table
    assert table.count("-") >= 1  # missing PAL cell rendered as dash


def test_roc_series_lists_thresholds():
    text = format_roc_series(
        "Fig. 12", {"Fixed": [RocPoint(0.1, 0.5, 0.6), RocPoint(0.2, 0.7, 0.4)]}
    )
    assert "threshold=0.1" in text
    assert "P=0.70" in text


def test_sensitivity_table():
    text = format_sensitivity_table(
        [("W=100", "rubis/nethog", pr(10, 0, 0))]
    )
    assert "W=100" in text
    assert "1.00" in text
