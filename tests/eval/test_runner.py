"""Tests for the campaign runner (kept small: runs are expensive)."""

import pytest

from repro.baselines import PALLocalizer
from repro.eval.metrics import PrecisionRecall
from repro.eval.runner import (
    FChainLocalizer,
    dependency_graph_for,
    evaluate_schemes,
    execute_run,
    generate_runs,
    sweep_thresholds,
)
from repro.eval.scenarios import scenario_by_name


@pytest.fixture(scope="module")
def cpuhog_records():
    return generate_runs(scenario_by_name("rubis/cpuhog"), 2, base_seed="t")


class TestExecuteRun:
    def test_produces_violation_after_injection(self, cpuhog_records):
        assert len(cpuhog_records) == 2
        for record in cpuhog_records:
            assert record.violation_time >= record.injection_time
            assert record.ground_truth == frozenset({"db"})
            assert record.store.length > record.violation_time

    def test_deterministic(self):
        scenario = scenario_by_name("rubis/cpuhog")
        a = execute_run(scenario, ("t", scenario.name, 0))
        b = execute_run(scenario, ("t", scenario.name, 0))
        assert a.violation_time == b.violation_time


class TestDependencyGraphCache:
    def test_rubis_graph_complete(self):
        graph = dependency_graph_for("rubis")
        assert set(graph.edges) == {
            ("web", "app1"),
            ("web", "app2"),
            ("app1", "db"),
            ("app2", "db"),
        }

    def test_systems_graph_empty(self):
        assert dependency_graph_for("systems").number_of_edges() == 0

    def test_cached_instance(self):
        assert dependency_graph_for("rubis") is dependency_graph_for("rubis")


class TestEvaluateSchemes:
    def test_scores_all_schemes_on_shared_runs(self, cpuhog_records):
        scenario = scenario_by_name("rubis/cpuhog")
        results = evaluate_schemes(
            scenario,
            [FChainLocalizer(), PALLocalizer()],
            records=cpuhog_records,
        )
        assert set(results) == {"FChain", "PAL"}
        assert all(isinstance(v, PrecisionRecall) for v in results.values())
        assert results["FChain"].runs == 2

    def test_fchain_finds_db(self, cpuhog_records):
        scenario = scenario_by_name("rubis/cpuhog")
        results = evaluate_schemes(
            scenario, [FChainLocalizer()], records=cpuhog_records
        )
        assert results["FChain"].recall > 0.4


class TestSweep:
    def test_threshold_sweep(self, cpuhog_records):
        from repro.baselines import HistogramLocalizer

        scenario = scenario_by_name("rubis/cpuhog")
        points = sweep_thresholds(
            scenario,
            lambda th: HistogramLocalizer(threshold=th),
            [0.05, 5.0],
            records=cpuhog_records,
        )
        assert len(points) == 2
        assert points[0].threshold == 0.05
